// Package attack implements run-time attack injectors for every attack
// class in Table 1 of the paper, exercised against REV-protected victims:
//
//	direct code injection, indirect code injection, return-oriented
//	programming, jump-oriented programming, VTable compromise, and
//	return-to-libc.
//
// Each scenario builds a deterministic victim program, supplies a run-time
// attack hook that mutates simulated state exactly the way the real attack
// would (overwriting code bytes, smashing saved return addresses,
// corrupting function-pointer tables), and states which REV violation
// reasons constitute detection. Scenarios also run unprotected to
// demonstrate the attack actually changes the victim's observable
// behaviour — detection without a real compromise would be meaningless.
package attack

import (
	"fmt"

	"rev/internal/asm"
	"rev/internal/core"
	"rev/internal/cpu"
	"rev/internal/forensics"
	"rev/internal/isa"
	"rev/internal/prog"
)

// Scenario is one Table-1 attack.
type Scenario struct {
	Name      string
	Table1Row string // the paper's attack-class name
	// How describes the compromise, mirroring Table 1's middle column.
	How string
	// Detect describes REV's detection, mirroring Table 1's last column.
	Detect string
	// Build constructs a fresh victim program (deterministic).
	Build func() (*prog.Program, error)
	// Hook mutates machine state to mount the attack.
	Hook func(m *cpu.Machine, pc uint64, in isa.Instr)
	// Expect lists the REV violation reasons that count as detection.
	Expect []core.ViolationReason
	// reset re-arms one-shot state between runs.
	reset func()
}

// Outcome reports one scenario's protected and unprotected runs.
type Outcome struct {
	Scenario *Scenario
	// Detected and Reason report the REV-protected run.
	Detected bool
	Reason   core.ViolationReason
	// BehaviourChanged reports whether the unprotected attacked run's
	// output diverged from the clean run (the attack is real).
	BehaviourChanged bool
	// Evidence is the forensic capture of the offending block (Sec. X),
	// when detection produced one.
	Evidence *forensics.Record
}

// victim builds the shared victim: a program with a stack-using function,
// a vtable-style computed call, and a libc-like second module. The layout
// is deterministic so scenarios can aim their corruptions.
type victim struct {
	build   func() (*prog.Program, error)
	gadget  uint64 // address of a legal-but-wrong block (ROP/JOP target)
	libcFn  uint64 // entry of the library function (return-to-libc target)
	grant   uint64 // entry of grantAccess (VTable diversion target)
	vtSlot  uint64 // address of the vtable slot in data memory
	codePat uint64 // address of victim code to overwrite (injection)
}

func buildVictim() *victim {
	v := &victim{}
	mainBuilder := func() (*asm.Builder, error) {
		b := asm.New("victim")
		b.Func("main")
		b.Entry("main")
		b.LoadImm(1, 0)
		b.LoadImm(2, 50)
		b.Label("loop")
		b.Call("iter")
		b.OpI(isa.ADDI, 1, 1, 1)
		b.Br(isa.BLT, 1, 2, "loop")
		b.Out(3)
		b.Halt()

		// One loop iteration: a stack-saving call, a virtual dispatch, and
		// a switch dispatch whose cases converge on "finish".
		b.Func("iter")
		b.OpI(isa.ADDI, isa.RegSP, isa.RegSP, -8)
		b.Store(isa.RegRA, isa.RegSP, 0)
		b.Call("process")
		// Virtual dispatch through the vtable (object-oriented call).
		b.LoadDataAddr(8, "vtable", 0)
		b.Load(9, 8, 0)
		b.CallReg(9)
		// Switch dispatch through the jump table.
		b.OpI(isa.ANDI, 10, 1, 1)
		b.LoadDataAddr(8, "jumptab", 0)
		b.OpI(isa.SHLI, 11, 10, 3)
		b.Op3(isa.ADD, 8, 8, 11)
		b.Load(9, 8, 0)
		b.JmpReg(9)
		b.Func("finish") // jump-table cases converge here; iter's epilogue
		b.Load(isa.RegRA, isa.RegSP, 0)
		b.OpI(isa.ADDI, isa.RegSP, isa.RegSP, 8)
		b.Ret()

		// process: saves RA on the stack (the ROP surface), does work,
		// returns.
		b.Func("process")
		b.OpI(isa.ADDI, isa.RegSP, isa.RegSP, -8)
		b.Store(isa.RegRA, isa.RegSP, 0)
		b.OpI(isa.ADDI, 3, 3, 7)
		b.Call("helper")
		b.Load(isa.RegRA, isa.RegSP, 0)
		b.OpI(isa.ADDI, isa.RegSP, isa.RegSP, 8)
		b.Ret()
		b.Func("helper")
		b.Op3(isa.XOR, 3, 3, 1)
		b.Ret()

		// Virtual method (the legal vtable target).
		b.Func("method")
		b.OpI(isa.ADDI, 3, 3, 1)
		b.Ret()
		// A privileged-looking routine a VTable attack would divert to:
		// legal code, never a legal target of the virtual call site.
		b.Func("grantAccess")
		b.LoadImm(4, 0x600D)
		b.Out(4)
		b.Ret()

		// Jump table cases.
		b.Func("case0")
		b.Nop()
		b.CodeAddrFixup(12, "finish")
		b.JmpReg(12)
		b.Func("case1")
		b.OpI(isa.ADDI, 3, 3, 2)
		b.CodeAddrFixup(12, "finish")
		b.JmpReg(12)

		// Gadget: a block an attacker wants to run (e.g. spills a secret).
		b.Func("gadget")
		b.LoadImm(4, 0xBAD)
		b.Out(4)
		b.Ret()

		m, _ := b.FuncOffset("method")
		b.DataWords("vtable", []uint64{prog.CodeBase + m})
		c0, _ := b.FuncOffset("case0")
		c1, _ := b.FuncOffset("case1")
		b.DataWords("jumptab", []uint64{prog.CodeBase + c0, prog.CodeBase + c1})
		return b, nil
	}

	v.build = func() (*prog.Program, error) {
		b, err := mainBuilder()
		if err != nil {
			return nil, err
		}
		mainMod, err := b.Assemble()
		if err != nil {
			return nil, err
		}
		lib := asm.New("libc")
		lib.Func("system")
		lib.LoadImm(5, 0xCA11)
		lib.Out(5)
		lib.Ret()
		libMod, err := lib.Assemble()
		if err != nil {
			return nil, err
		}
		p := prog.NewProgram()
		if err := p.Load(mainMod); err != nil {
			return nil, err
		}
		if err := p.Load(libMod); err != nil {
			return nil, err
		}
		if a, ok := mainMod.Lookup("gadget"); ok {
			v.gadget = a
		}
		if a, ok := libMod.Lookup("system"); ok {
			v.libcFn = a
		}
		if a, ok := mainMod.Lookup("process"); ok {
			v.codePat = a + 2*isa.WordSize
		}
		if a, ok := mainMod.Lookup("grantAccess"); ok {
			v.grant = a
		}
		// The main module's data segment is placed at DataBase; "vtable"
		// is its first symbol.
		v.vtSlot = mainMod.DataOff
		return p, nil
	}
	return v
}

// Scenarios returns the six Table-1 attacks.
func Scenarios() []*Scenario {
	var out []*Scenario

	// 1. Direct code injection: another (higher-privilege) process
	// overwrites victim instructions in place.
	{
		v := buildVictim()
		fired := false
		s := &Scenario{
			Name:      "direct-code-injection",
			Table1Row: "Direct Code Injection",
			How:       "binaries are overwritten on the fly by another process",
			Detect:    "basic block crypto hash will not match reference hash value",
			Build:     v.build,
			Expect:    []core.ViolationReason{core.ViolationHash},
			reset:     func() { fired = false },
		}
		s.Hook = func(m *cpu.Machine, pc uint64, in isa.Instr) {
			if !fired && m.Instret == 300 {
				fired = true
				payload := []isa.Instr{
					{Op: isa.ADDI, Rd: 4, Imm: 0x666},
					{Op: isa.OUT, Rs1: 4},
				}
				for i, pi := range payload {
					var buf [isa.WordSize]byte
					pi.EncodeTo(buf[:])
					m.Mem.WriteBytes(v.codePat+uint64(i*isa.WordSize), buf[:])
				}
			}
		}
		out = append(out, s)
	}

	// 2. Indirect code injection: a buffer overflow writes attacker code
	// onto the stack and redirects the saved return address into it.
	{
		v := buildVictim()
		fired := false
		s := &Scenario{
			Name:      "indirect-code-injection",
			Table1Row: "Indirect Code Injection",
			How:       "new code added to the call stack is executed because of buffer overflows",
			Detect:    "hash mismatch; control flow path will not match the statically known path",
			Build:     v.build,
			Expect: []core.ViolationReason{
				core.ViolationModule, core.ViolationHash, core.ViolationReturn,
			},
			reset: func() { fired = false },
		}
		s.Hook = func(m *cpu.Machine, pc uint64, in isa.Instr) {
			if !fired && in.Op == isa.LD && in.Rd == isa.RegRA {
				fired = true
				sp := m.ReadReg(isa.RegSP)
				// Shellcode on the stack...
				shell := []isa.Instr{
					{Op: isa.ADDI, Rd: 4, Imm: 0x31337},
					{Op: isa.OUT, Rs1: 4},
					{Op: isa.HALT},
				}
				base := sp + 64
				for i, si := range shell {
					var buf [isa.WordSize]byte
					si.EncodeTo(buf[:])
					m.Mem.WriteBytes(base+uint64(i*isa.WordSize), buf[:])
				}
				// ...and the saved RA now points at it.
				m.Mem.Write64(sp, base)
			}
		}
		out = append(out, s)
	}

	// 3. Return-oriented attack: the saved return address is redirected to
	// an existing, legal block (a gadget) instead of injected code.
	{
		v := buildVictim()
		fired := false
		s := &Scenario{
			Name:      "return-oriented",
			Table1Row: "Return Oriented Attack",
			How:       "function calls return to unintended basic blocks",
			Detect:    "control flow path will not match path known from static analysis",
			Build:     v.build,
			Expect:    []core.ViolationReason{core.ViolationReturn, core.ViolationHash},
			reset:     func() { fired = false },
		}
		s.Hook = func(m *cpu.Machine, pc uint64, in isa.Instr) {
			if !fired && in.Op == isa.LD && in.Rd == isa.RegRA {
				fired = true
				m.Mem.Write64(m.ReadReg(isa.RegSP), v.gadget)
			}
		}
		out = append(out, s)
	}

	// 4. Jump-oriented attack: a computed jump is steered to a gadget.
	{
		v := buildVictim()
		fired := false
		s := &Scenario{
			Name:      "jump-oriented",
			Table1Row: "Jump Oriented Attack",
			How:       "gadgets (pieces of code) are used to construct a desired attack code",
			Detect:    "gadget hash/target will not match; control flow path will not match",
			Build:     v.build,
			Expect:    []core.ViolationReason{core.ViolationTarget, core.ViolationHash},
			reset:     func() { fired = false },
		}
		s.Hook = func(m *cpu.Machine, pc uint64, in isa.Instr) {
			if !fired && m.Instret > 200 && in.Op == isa.JR {
				fired = true
				// Overwrite the jump-table slot in data memory; the
				// in-flight dispatch register is refetched... the register
				// was already loaded, so corrupt it directly, as a JOP
				// chain does via controlled memory.
				m.X[in.Rs1] = v.gadget + isa.WordSize // mid-gadget: not even a block start
			}
		}
		out = append(out, s)
	}

	// 5. VTable compromise: the function pointer in the object's vtable is
	// replaced with a different (legal) function, diverting the virtual
	// call. No code is modified and the target is real code.
	{
		v := buildVictim()
		fired := false
		s := &Scenario{
			Name:      "vtable-compromise",
			Table1Row: "Vtable compromises",
			How:       "overwriting Vtable at runtime to alter the control flow",
			Detect:    "control flow path will not match path known from static analysis",
			Build:     v.build,
			Expect:    []core.ViolationReason{core.ViolationTarget},
			reset:     func() { fired = false },
		}
		s.Hook = func(m *cpu.Machine, pc uint64, in isa.Instr) {
			if !fired && m.Instret == 400 {
				fired = true
				// Replace the object's method pointer with grantAccess —
				// real, legal code that this call site must never reach.
				m.Mem.Write64(v.vtSlot, v.grant)
			}
		}
		out = append(out, s)
	}

	// 6. Return-to-libc: the saved return address is pointed at a library
	// function entry.
	{
		v := buildVictim()
		fired := false
		s := &Scenario{
			Name:      "return-to-libc",
			Table1Row: "Return to lib-C attacks",
			How:       "overwriting the function return address to a lib-C function address",
			Detect:    "control flow path will not match path known from static analysis",
			Build:     v.build,
			Expect:    []core.ViolationReason{core.ViolationReturn, core.ViolationHash},
			reset:     func() { fired = false },
		}
		s.Hook = func(m *cpu.Machine, pc uint64, in isa.Instr) {
			if !fired && in.Op == isa.LD && in.Rd == isa.RegRA {
				fired = true
				m.Mem.Write64(m.ReadReg(isa.RegSP), v.libcFn)
			}
		}
		out = append(out, s)
	}

	return out
}

// Run executes one scenario three ways: clean-unprotected (reference
// output), attacked-unprotected (must diverge), attacked-protected (must be
// detected). maxInstrs bounds each run.
func Run(s *Scenario, maxInstrs uint64) (*Outcome, error) {
	if s.reset != nil {
		s.reset()
	}
	rcClean := core.DefaultRunConfig()
	rcClean.MaxInstrs = maxInstrs
	clean, err := core.Run(s.Build, rcClean)
	if err != nil {
		return nil, fmt.Errorf("attack %s: clean run: %w", s.Name, err)
	}

	if s.reset != nil {
		s.reset()
	}
	rcAtk := core.DefaultRunConfig()
	rcAtk.MaxInstrs = maxInstrs
	rcAtk.AttackHook = s.Hook
	attacked, err := core.Run(s.Build, rcAtk)
	if err != nil {
		return nil, fmt.Errorf("attack %s: unprotected attacked run: %w", s.Name, err)
	}

	if s.reset != nil {
		s.reset()
	}
	rcREV := core.DefaultRunConfig()
	rcREV.MaxInstrs = maxInstrs
	rcREV.AttackHook = s.Hook
	rev := core.DefaultConfig()
	rev.Forensics = true
	rcREV.REV = &rev
	protected, err := core.Run(s.Build, rcREV)
	if err != nil {
		return nil, fmt.Errorf("attack %s: protected run: %w", s.Name, err)
	}

	o := &Outcome{Scenario: s}
	o.BehaviourChanged = !equalOutputs(clean.Output, attacked.Output)
	if protected.Violation != nil {
		o.Reason = protected.Violation.Reason
		for _, want := range s.Expect {
			if protected.Violation.Reason == want {
				o.Detected = true
			}
		}
		if len(protected.Forensics.Records) > 0 {
			o.Evidence = &protected.Forensics.Records[0]
		}
	}
	return o, nil
}

func equalOutputs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
