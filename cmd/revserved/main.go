// Command revserved is the signature-table attestation service: it runs
// the trusted-loader pipeline (profiling, static analysis, encrypted
// table build) for the requested workloads once, then serves the
// resulting table snapshots and per-entry lookups to any number of
// measurement processes over the sigserve wire protocol
// (docs/PROTOCOL.md).
//
// Usage:
//
//	revserved -bench gcc                          # serve gcc's tables
//	revserved -bench all -listen :7415            # every benchmark
//	revserved -bench gcc,mcf -tenant team-a       # a named namespace
//	revserved -bench gcc -delay 1ms               # injected service
//	                                              # latency (bench ladder)
//	revserved -bench gcc -debug-addr :6060        # live /metrics + pprof
//
// The measurement side connects with revsim -sigserver or a
// sigserve.Client; as long as both sides name the same benchmark,
// -scale, -instrs and -format, the served tables are byte-identical to
// the ones the client would have built locally, so verdicts and figures
// are identical too (the acceptance contract in docs/PROTOCOL.md).
//
// Version-2 clients may also retain attestation evidence streams here
// (revsim -evidence-upload): each tenant keeps its newest streams,
// evicting oldest-first under the -evidence-streams / -evidence-bytes
// bounds, and revattest -fetch pulls a retained stream back for offline
// verification (docs/EVIDENCE.md).
//
// SIGINT/SIGTERM drains gracefully: /readyz (on -debug-addr) flips to
// 503 so load balancers route away, in-flight requests are answered
// CodeShutdown, and the process waits up to -drain-timeout before
// force-closing stragglers. -slow-log emits structured JSON lines for
// requests over a threshold (docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rev/internal/core"
	"rev/internal/sigserve"
	"rev/internal/sigtable"
	"rev/internal/telemetry"
	"rev/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7415", "address to serve the sigserve protocol on")
	bench := flag.String("bench", "", "benchmark name(s) to build and serve, comma separated, or 'all'")
	tenant := flag.String("tenant", "default", "tenant namespace to publish the tables under")
	format := flag.String("format", "normal", "validation format: normal, aggressive, cfi-only")
	scale := flag.Float64("scale", 1.0, "workload static-size scale (must match the measurement side)")
	instrs := flag.Uint64("instrs", 1_000_000, "profiling instruction budget (must match the measurement side)")
	keySeed := flag.Uint64("keyseed", 0x5eed, "table key derivation seed")
	delay := flag.Duration("delay", 0, "artificial per-request service delay (latency-ladder benchmarking)")
	evStreams := flag.Int("evidence-streams", 0, "retained evidence streams per tenant (0 keeps the default; see docs/EVIDENCE.md)")
	evBytes := flag.Int("evidence-bytes", 0, "per-stream evidence size cap in bytes (0 keeps the default)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, /debug/vars and /debug/pprof on this address while running")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown grace: how long SIGINT/SIGTERM waits for in-flight connections before force-closing")
	tenantRows := flag.Int("tenant-rows", 0, "per-tenant metric row cap before folding into _overflow (0 keeps the default)")
	slowLog := flag.Duration("slow-log", 0, "log requests slower than this as JSON lines on stderr (0 disables)")
	slowRate := flag.Int("slow-log-rate", 10, "max slow-request log lines per second (suppressed lines are counted)")
	flag.Parse()

	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := parseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "revserved:", err)
		os.Exit(2)
	}

	var names []string
	if *bench == "all" {
		for _, p := range workload.Profiles() {
			names = append(names, p.Name)
		}
	} else {
		for _, n := range strings.Split(*bench, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}

	set := &telemetry.Set{Reg: telemetry.NewRegistry()}
	srv := sigserve.NewServer()
	srv.SetTenantRows(*tenantRows)
	srv.Instrument(set)
	srv.SetDelay(*delay)
	srv.SetEvidenceRetention(*evStreams, *evBytes)
	srv.SetSlowLog(os.Stderr, *slowLog, *slowRate)

	rc := core.DefaultRunConfig()
	rc.MaxInstrs = *instrs
	rc.KeySeed = *keySeed
	cfg := core.DefaultConfig()
	cfg.Format = f
	rc.REV = &cfg

	for _, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "revserved:", err)
			os.Exit(1)
		}
		p = p.Scaled(*scale)
		start := time.Now()
		prep, err := core.Prepare(p.Builder(), rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revserved: preparing %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, st := range prep.Tables {
			epoch := srv.Publish(*tenant, st.Module, *st.Table, st.Snap)
			fmt.Fprintf(os.Stderr, "revserved: published %s/%s epoch %d (%s, %d records, %d bytes) in %.2fs\n",
				*tenant, st.Module, epoch, st.Table.Format, st.Table.Records, st.Table.Size,
				time.Since(start).Seconds())
		}
	}

	if *debugAddr != "" {
		mux := telemetry.NewDebugMux(set.Registry())
		mux.Handle("/healthz", srv.HealthzHandler())
		mux.Handle("/readyz", srv.ReadyzHandler())
		bound, _, err := telemetry.ServeHandler(*debugAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "revserved:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "revserved: debug endpoint on http://%s/metrics\n", bound)
	}

	// First signal drains gracefully: /readyz flips unhealthy, in-flight
	// requests are answered CodeShutdown, and up to -drain-timeout is
	// spent waiting for connections to finish. A second signal (or the
	// deadline) force-closes.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintf(os.Stderr, "revserved: draining (up to %v; signal again to force)\n", *drainTimeout)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "revserved: force close")
			srv.Close()
		}()
		srv.Shutdown(*drainTimeout)
	}()

	fmt.Fprintf(os.Stderr, "revserved: serving tenant %q on %s (delay %v)\n", *tenant, *listen, *delay)
	if err := srv.ListenAndServe(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "revserved:", err)
		os.Exit(1)
	}
}

func parseFormat(s string) (sigtable.Format, error) {
	switch s {
	case "normal":
		return sigtable.Normal, nil
	case "aggressive":
		return sigtable.Aggressive, nil
	case "cfi-only":
		return sigtable.CFIOnly, nil
	}
	return 0, fmt.Errorf("unknown format %q", s)
}
