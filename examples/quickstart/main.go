// Quickstart: assemble a tiny program, run it on the simulated
// out-of-order core with REV validation attached, and then show that the
// same program with one tampered instruction fails validation.
package main

import (
	"fmt"
	"log"

	"rev"
	"rev/internal/asm"
	"rev/internal/cpu"
	"rev/internal/isa"
	"rev/internal/prog"
)

// buildProgram assembles sum(1..100) with a helper call, giving REV a
// little control flow to validate: a loop, a call, and a return.
func buildProgram() (*rev.Program, error) {
	b := asm.New("quickstart")
	b.Func("main")
	b.Entry("main")
	b.LoadImm(1, 0)   // i
	b.LoadImm(2, 100) // n
	b.LoadImm(3, 0)   // sum
	b.Label("loop")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Call("add")
	b.Br(isa.BLT, 1, 2, "loop")
	b.Out(3)
	b.Halt()
	b.Func("add")
	b.Op3(isa.ADD, 3, 3, 1)
	b.Ret()
	m, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	p := prog.NewProgram()
	if err := p.Load(m); err != nil {
		return nil, err
	}
	return p, nil
}

func main() {
	// 1. Clean run under REV: full validation, unchanged behaviour.
	cfg := rev.DefaultRunConfig()
	cfg.MaxInstrs = 100_000
	cfg.REV = rev.DefaultREVConfig()
	res, err := rev.Run(buildProgram, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output:      %v (want [5050])\n", res.Output)
	fmt.Printf("IPC:                 %.3f\n", res.IPC())
	fmt.Printf("validated blocks:    %d\n", res.Engine.ValidatedBlocks)
	fmt.Printf("SC probes/misses:    %d / %d\n", res.SC.Probes, res.SC.Misses)
	fmt.Printf("signature table:     %.1f%% of executable size\n", 100*res.Tables[0].SizeRatio())
	if res.Violation != nil {
		log.Fatalf("unexpected violation: %v", res.Violation)
	}

	// 2. Tampered run: overwrite one instruction of the add function in
	// simulated memory mid-run — the crypto hash of the fetched block no
	// longer matches the encrypted reference signature.
	fmt.Println("\ntampering with the add function at instruction 300...")
	scratch, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}
	addFn, _ := scratch.Main().Lookup("add")
	cfg2 := rev.DefaultRunConfig()
	cfg2.MaxInstrs = 100_000
	cfg2.REV = rev.DefaultREVConfig()
	cfg2.AttackHook = func(m *cpu.Machine, pc uint64, in isa.Instr) {
		if m.Instret == 300 {
			// Turn 'add r3, r3, r1' into 'add r3, r3, r3' (doubling the
			// sum instead of accumulating).
			evil := isa.Instr{Op: isa.ADD, Rd: 3, Rs1: 3, Rs2: 3}
			var buf [isa.WordSize]byte
			evil.EncodeTo(buf[:])
			m.Mem.WriteBytes(addFn, buf[:])
		}
	}
	res2, err := rev.Run(buildProgram, cfg2)
	if err != nil {
		log.Fatal(err)
	}
	if res2.Violation == nil {
		log.Fatal("tampering was not detected!")
	}
	fmt.Printf("REV raised:          %v\n", res2.Violation)
}
