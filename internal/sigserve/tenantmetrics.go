package sigserve

import (
	"sync"

	"rev/internal/telemetry"
)

// Per-tenant metrics (docs/OBSERVABILITY.md "Per-tenant server metrics").
//
// The server keys a small table of metric rows by tenant name so a
// multi-tenant deployment can tell which namespace is driving load,
// errors, or tail latency. Tenant names arrive on the wire, so the
// table is cardinality-bounded: once TenantRows distinct names have
// rows, every further name folds into one shared "_overflow" row and a
// counter records how many distinct names were folded. Rows are
// resolved once per connection at handshake (the tenant is fixed for a
// connection's lifetime), so the per-request path touches only
// preallocated atomic cells — no map lookups, no allocation.

// DefaultTenantRows is the default cardinality bound for the per-tenant
// metric table (see Server.SetTenantRows).
const DefaultTenantRows = 64

// OverflowTenant is the reserved row name that absorbs every tenant
// beyond the cardinality bound.
const OverflowTenant = "_overflow"

// Request types that get per-tenant counters, in compact-index order.
// numReqTypes must match reqTypeIndex below.
const numReqTypes = 10

// reqTypeNames maps the compact request-type index to its metric-name
// suffix.
var reqTypeNames = [numReqTypes]string{
	"ping", "modules", "snapshot", "lookup",
	"lookup_batch", "evidence_put", "evidence_list", "evidence_get",
	"snapshot_delta", "topology",
}

// reqTypeIndex maps a request message type to its compact index
// (-1 for responses and unknown types).
func reqTypeIndex(t MsgType) int {
	switch t {
	case MsgPing:
		return 0
	case MsgModules:
		return 1
	case MsgSnapshot:
		return 2
	case MsgLookup:
		return 3
	case MsgLookupBatch:
		return 4
	case MsgEvidencePut:
		return 5
	case MsgEvidenceList:
		return 6
	case MsgEvidenceGet:
		return 7
	case MsgSnapshotDelta:
		return 8
	case MsgTopology:
		return 9
	}
	return -1
}

// tenantRow holds one tenant's metric handles. All fields are
// registry-owned atomics, so a row resolved at handshake may be hit
// from many connection goroutines without further synchronization.
type tenantRow struct {
	requests *telemetry.ShardedCounter
	errors   *telemetry.Counter
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
	latency  *telemetry.Histogram
	byType   [numReqTypes]*telemetry.Counter
}

// observe records one served request on the row (nil-safe: a nil row is
// the disabled state).
func (r *tenantRow) observe(typeIdx, shard int, bytesIn int, durNS uint64) {
	if r == nil {
		return
	}
	r.requests.Cell(shard).Inc()
	r.bytesIn.Add(uint64(bytesIn))
	r.latency.Observe(durNS)
	if typeIdx >= 0 {
		r.byType[typeIdx].Inc()
	}
}

// wrote records response bytes (and whether the response was an error)
// on the row.
func (r *tenantRow) wrote(n int, isErr bool) {
	if r == nil {
		return
	}
	r.bytesOut.Add(uint64(n))
	if isErr {
		r.errors.Inc()
	}
}

// tenantRowShards is the shard count for each row's request counter —
// enough to keep a handful of connections per tenant from bouncing one
// cache line, small enough that 64 rows stay cheap.
const tenantRowShards = 8

// tenantTab is the bounded tenant-name -> tenantRow table. Row creation
// takes the write lock and registers metrics; the steady state is one
// read-locked map hit per connection handshake.
type tenantTab struct {
	reg   *telemetry.Registry
	limit int

	// folded counts distinct tenant names that landed in the overflow
	// row; rows gauges the live row count (overflow excluded).
	folded *telemetry.Counter
	rows   *telemetry.Gauge

	mu   sync.RWMutex
	tab  map[string]*tenantRow
	over *tenantRow // lazily created overflow row
}

func newTenantTab(reg *telemetry.Registry, limit int) *tenantTab {
	if limit <= 0 {
		limit = DefaultTenantRows
	}
	return &tenantTab{
		reg:    reg,
		limit:  limit,
		folded: reg.Counter("sigserve_server_tenant_rows_folded_total", "distinct tenant names folded into the _overflow row by the cardinality bound"),
		rows:   reg.Gauge("sigserve_server_tenant_rows", "live per-tenant metric rows (excluding _overflow)"),
		tab:    make(map[string]*tenantRow),
	}
}

// row resolves (creating if needed) the metric row for a tenant name,
// folding into the overflow row beyond the cardinality bound. Called
// once per connection at handshake. Nil-safe: a nil table (telemetry
// disabled) resolves to a nil row, and every row method is nil-safe.
func (tt *tenantTab) row(name string) *tenantRow {
	if tt == nil {
		return nil
	}
	tt.mu.RLock()
	r := tt.tab[name]
	tt.mu.RUnlock()
	if r != nil {
		return r
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if r = tt.tab[name]; r != nil {
		return r
	}
	if len(tt.tab) >= tt.limit || name == OverflowTenant {
		if name != OverflowTenant {
			tt.folded.Inc()
		}
		if tt.over == nil {
			tt.over = tt.newRow(OverflowTenant)
		}
		return tt.over
	}
	r = tt.newRow(name)
	tt.tab[name] = r
	tt.rows.Add(1)
	return r
}

// newRow registers one tenant's metric family. Metric names embed the
// tenant (sanitized to Prometheus form at exposition by promName).
func (tt *tenantTab) newRow(name string) *tenantRow {
	p := "sigserve_tenant." + name + "."
	r := &tenantRow{
		requests: tt.reg.Sharded(p+"requests_total", "requests served for tenant "+name, tenantRowShards),
		errors:   tt.reg.Counter(p+"errors_total", "requests answered with MsgError for tenant "+name),
		bytesIn:  tt.reg.Counter(p+"bytes_in_total", "request bytes received for tenant "+name),
		bytesOut: tt.reg.Counter(p+"bytes_out_total", "response bytes written for tenant "+name),
		latency:  tt.reg.Histogram(p+"request_ns", "request service time for tenant "+name+", ns"),
	}
	for i, tn := range reqTypeNames {
		r.byType[i] = tt.reg.Counter(p+"req."+tn+"_total", tn+" requests for tenant "+name)
	}
	return r
}
