package evidence

import (
	"bytes"
	"fmt"
	"sort"

	"rev/internal/isa"
	"rev/internal/sigtable"
)

// VerifyConfig parameterizes offline verification of an evidence stream.
type VerifyConfig struct {
	// Tenant, when non-empty, must equal the genesis record's tenant —
	// the cross-tenant splice check.
	Tenant string
	// Binding, when non-empty, must equal the genesis record's binding.
	Binding string
	// Modules, when non-nil, must equal the genesis module map exactly
	// (same names, ranges, order) — binds the stream to the verifier's
	// independently loaded module layout.
	Modules []ModuleRange
	// Sources maps each attested module name to a signature-table lookup
	// source built (or fetched) by the verifier. Every module named in
	// the genesis record must be present.
	Sources map[string]sigtable.Source
}

// Report is the result of a successful verification: the stream is
// structurally intact (framing, sequence, chain), bound as expected,
// and every committed block replayed legal against the verifier's own
// signature tables. The Outcome is the live run's sealed verdict.
type Report struct {
	Genesis  Genesis
	Records  int
	Segments int
	Fences   int
	// Blocks is the committed-block tuple count (equals the final
	// record's sealed count; Verify rejects the stream otherwise).
	Blocks uint64
	// Outcome is the verdict the final record sealed into the chain.
	Outcome Outcome
}

// Peek decodes just the genesis record of a stream — framing and
// payload only, no chain or replay checks — so a verifier can discover
// the binding (workload parameters, format, module map) it needs to
// build its own tables before calling Verify.
func Peek(stream []byte) (Genesis, error) {
	recs, err := parseStream(stream)
	if err != nil {
		return Genesis{}, err
	}
	if recs[0].typ != recGenesis {
		return Genesis{}, fmt.Errorf("%w: first record is type %#x, want genesis", ErrMalformed, recs[0].typ)
	}
	return decodeGenesis(recs[0].payload)
}

// Verify replays an evidence stream against the verifier's own
// signature tables and returns a Report, or a typed error naming what
// broke (see the Err sentinels in this package). Checks run in order:
// framing, record sequence, hash chain, genesis binding, per-segment
// path hashes, per-block table replay (signature membership, computed
// targets, delayed returns — the same rules the live engine enforces,
// selected by the genesis format), and the final record's accounting.
//
// A nil error with Outcome.Verdict == VerdictViolation means the stream
// is genuine evidence of a run the live engine aborted: the offending
// block never committed, so the committed prefix replays clean and the
// verdict is read from the sealed final record.
func Verify(stream []byte, vc VerifyConfig) (*Report, error) {
	recs, err := parseStream(stream)
	if err != nil {
		return nil, err
	}
	if err := checkSequence(recs); err != nil {
		return nil, err
	}
	if err := checkChain(recs); err != nil {
		return nil, err
	}
	if err := checkShape(recs); err != nil {
		return nil, err
	}
	g, err := decodeGenesis(recs[0].payload)
	if err != nil {
		return nil, err
	}
	if err := checkBinding(g, vc); err != nil {
		return nil, err
	}

	rep := &Report{Genesis: g, Records: len(recs)}
	rp := replayer{g: g, vc: vc}
	for _, r := range recs[1 : len(recs)-1] {
		switch r.typ {
		case recSegment:
			s, err := decodeSegment(r.payload)
			if err != nil {
				return nil, err
			}
			if err := rp.segment(r.seq, s); err != nil {
				return nil, err
			}
			rep.Segments++
		case recFence:
			f, err := decodeFence(r.payload)
			if err != nil {
				return nil, err
			}
			rp.fence(f)
			rep.Fences++
		}
	}
	fin, err := decodeFinal(recs[len(recs)-1].payload)
	if err != nil {
		return nil, err
	}
	if fin.blocks != rp.blocks {
		return nil, fmt.Errorf("%w: final record seals %d blocks, stream carries %d",
			ErrVerdictMismatch, fin.blocks, rp.blocks)
	}
	if fin.path != rp.path.cur {
		return nil, fmt.Errorf("%w: final record's path hash does not equal the replayed accumulator",
			ErrPathHashMismatch)
	}
	rep.Blocks = rp.blocks
	rep.Outcome = fin.outcome
	return rep, nil
}

// checkSequence rejects dropped (missing seq) and reordered (complete
// but unsorted seq) record sets.
func checkSequence(recs []rawRecord) error {
	n := len(recs)
	seen := make([]bool, n)
	var missing []uint32
	dup := false
	for _, r := range recs {
		if int(r.seq) >= n {
			missing = append(missing, r.seq)
			continue
		}
		if seen[r.seq] {
			dup = true
			continue
		}
		seen[r.seq] = true
	}
	if len(missing) > 0 || dup {
		for i, ok := range seen {
			if !ok {
				missing = append(missing, uint32(i))
			}
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		return fmt.Errorf("%w: sequence numbers %v are missing from a %d-record stream",
			ErrRecordDrop, missing, n)
	}
	for i, r := range recs {
		if int(r.seq) != i {
			return fmt.Errorf("%w: record with sequence %d found at position %d",
				ErrRecordReorder, r.seq, i)
		}
	}
	return nil
}

// checkChain recomputes every record's chain value from its predecessor.
func checkChain(recs []rawRecord) error {
	var cs chainState
	for i, r := range recs {
		want := cs.next(r.typ, r.seq, r.payload)
		if !bytes.Equal(want[:], r.chain[:]) {
			return fmt.Errorf("%w: record %d carries a chain value the predecessor chain does not produce",
				ErrChainMismatch, i)
		}
	}
	return nil
}

// checkShape enforces the record grammar: exactly one genesis first,
// exactly one final last, only segments and fences between.
func checkShape(recs []rawRecord) error {
	if recs[0].typ != recGenesis {
		return fmt.Errorf("%w: first record is type %#x, want genesis", ErrMalformed, recs[0].typ)
	}
	if recs[len(recs)-1].typ != recFinal {
		return fmt.Errorf("%w: stream ends without a final record", ErrTruncated)
	}
	for i, r := range recs[1 : len(recs)-1] {
		if r.typ == recGenesis || r.typ == recFinal {
			return fmt.Errorf("%w: record %d is type %#x, want segment or fence", ErrMalformed, i+1, r.typ)
		}
	}
	return nil
}

// checkBinding compares the genesis binding against the verifier's
// expectations and checks source coverage.
func checkBinding(g Genesis, vc VerifyConfig) error {
	if vc.Tenant != "" && g.Tenant != vc.Tenant {
		return fmt.Errorf("%w: stream is bound to tenant %q, verifier expects %q",
			ErrBindingMismatch, g.Tenant, vc.Tenant)
	}
	if vc.Binding != "" && g.Binding != vc.Binding {
		return fmt.Errorf("%w: stream is bound to %q, verifier expects %q",
			ErrBindingMismatch, g.Binding, vc.Binding)
	}
	if vc.Modules != nil {
		if len(vc.Modules) != len(g.Modules) {
			return fmt.Errorf("%w: stream attests %d modules, verifier expects %d",
				ErrBindingMismatch, len(g.Modules), len(vc.Modules))
		}
		for i, m := range vc.Modules {
			if g.Modules[i] != m {
				return fmt.Errorf("%w: stream module %d is %s [%#x,%#x], verifier expects %s [%#x,%#x]",
					ErrBindingMismatch, i,
					g.Modules[i].Name, g.Modules[i].Start, g.Modules[i].Limit,
					m.Name, m.Start, m.Limit)
			}
		}
	}
	for _, m := range g.Modules {
		if _, ok := vc.Sources[m.Name]; !ok {
			return fmt.Errorf("evidence: no signature source for attested module %q", m.Name)
		}
	}
	return nil
}

// replayer re-runs the engine's commit-time validation rules over the
// committed-block tuples: path-hash recomputation, module-range
// resolution, signature-table membership, computed-target legality, and
// delayed return validation with the same fence-clearing points the
// live engine uses.
type replayer struct {
	g      Genesis
	vc     VerifyConfig
	path   pathState
	blocks uint64

	pendingRet    uint64
	pendingRetSet bool

	tupleBuf []byte
}

// segment replays one segment record.
func (rp *replayer) segment(seq uint32, s segment) error {
	// Recompute the path hash over the re-encoded tuples; any divergence
	// between the tuples and the carried accumulator is tampering the
	// chain check cannot attribute (the chain covers the record, the
	// path covers the cross-record block sequence).
	b := rp.tupleBuf[:0]
	for _, t := range s.tuples {
		b = appendTuple(b, t)
	}
	rp.tupleBuf = b
	if rp.path.absorb(b) != s.path {
		return fmt.Errorf("%w: segment record %d", ErrPathHashMismatch, seq)
	}
	for _, t := range s.tuples {
		if err := rp.block(t); err != nil {
			return err
		}
		rp.blocks++
	}
	return nil
}

// fence replays a validation-state fence: REV disable and context
// switches clear the delayed-return latch, exactly as Engine.SysHandler
// and Engine.OnContextSwitch do.
func (rp *replayer) fence(f fence) {
	if f.kind == FenceDisable || f.kind == FenceContextSwitch {
		rp.pendingRetSet = false
	}
}

// block replays one committed block against the signature tables.
func (rp *replayer) block(t tuple) error {
	mod, ok := rp.module(t.end)
	if !ok {
		return fmt.Errorf("%w: block ending at %#x", ErrUnknownModule, t.end)
	}
	src := rp.vc.Sources[mod]
	if rp.g.Format == sigtable.CFIOnly {
		return rp.blockCFI(t, src)
	}
	entry, _, err := src.LookupAll(t.end, t.sig)
	if err != nil {
		if sigtable.IsMiss(err) {
			return fmt.Errorf("%w: block ending at %#x with signature %#x",
				ErrUnknownBlock, t.end, uint32(t.sig))
		}
		return fmt.Errorf("evidence: signature source for %s: %w", mod, err)
	}
	if rp.pendingRetSet && !contains(entry.RetPreds, rp.pendingRet) {
		return fmt.Errorf("%w: return from %#x landed in block ending at %#x",
			ErrIllegalReturn, rp.pendingRet, t.end)
	}
	if rp.checkTarget(t.term) && !contains(entry.Targets, t.next) {
		return fmt.Errorf("%w: block ending at %#x transferred to %#x",
			ErrIllegalTarget, t.end, t.next)
	}
	rp.pendingRetSet = t.term == isa.KindRet
	if rp.pendingRetSet {
		rp.pendingRet = t.end
	}
	return nil
}

// blockCFI replays a CFI-only commit: only computed edges are recorded
// and validated; the live engine neither hashes nor latches returns in
// this format.
func (rp *replayer) blockCFI(t tuple, src sigtable.Source) error {
	if _, err := src.LookupEdge(t.end, t.next); err != nil {
		if !sigtable.IsMiss(err) {
			return fmt.Errorf("evidence: signature source: %w", err)
		}
		if t.term == isa.KindRet {
			return fmt.Errorf("%w: edge %#x -> %#x", ErrIllegalReturn, t.end, t.next)
		}
		return fmt.Errorf("%w: edge %#x -> %#x", ErrIllegalTarget, t.end, t.next)
	}
	return nil
}

// checkTarget reports whether the format validates this terminator's
// target explicitly — the same selection Engine.validateHashed makes.
func (rp *replayer) checkTarget(term isa.Kind) bool {
	switch {
	case term == isa.KindRet:
		return false
	case term.IsComputed():
		return true
	case rp.g.Format == sigtable.Aggressive && term.IsControlFlow() && term != isa.KindHalt:
		return true
	}
	return false
}

// module resolves an address to its attested module name.
func (rp *replayer) module(addr uint64) (string, bool) {
	for _, m := range rp.g.Modules {
		if addr >= m.Start && addr <= m.Limit {
			return m.Name, true
		}
	}
	return "", false
}

func contains(list []uint64, a uint64) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}
