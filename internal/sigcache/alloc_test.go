package sigcache

import "testing"

// TestHitPathAllocFree pins the SC hot paths' allocation behavior: a Probe
// (hit or miss) allocates nothing, and a steady-state Fill refreshing an
// already-resident entry allocates at most once per run (the MRU merge is
// staged in the cache's reusable scratch and copied into the entry's
// existing backing arrays).
func TestHitPathAllocFree(t *testing.T) {
	c := smallSC()
	r := rec(0x1000, 7,
		[]uint64{0x2000, 0x3000, 0x4000},
		[]uint64{0x5000, 0x6000})
	need := Need{CheckTarget: true, Target: 0x2000, CheckPred: true, Pred: 0x5000}
	c.Fill(r, need)

	if a := testing.AllocsPerRun(200, func() {
		if c.Probe(0x1000, 7, need) != Hit {
			t.Fatal("expected hit")
		}
	}); a != 0 {
		t.Errorf("Probe hit path allocates %.1f times per call; want 0", a)
	}

	// Alternate the needed target so every Fill genuinely reshuffles the
	// MRU lists, the worst case for the merge.
	alt := []uint64{0x2000, 0x3000, 0x4000}
	i := 0
	if a := testing.AllocsPerRun(200, func() {
		n := Need{CheckTarget: true, Target: alt[i%len(alt)], CheckPred: true, Pred: 0x5000}
		i++
		c.Fill(r, n)
	}); a > 1 {
		t.Errorf("steady-state Fill allocates %.1f times per call; want <= 1", a)
	}

	// Miss probes must also be clean.
	if a := testing.AllocsPerRun(200, func() {
		c.Probe(0xdead0, 1, Need{})
	}); a != 0 {
		t.Errorf("Probe miss path allocates %.1f times per call; want 0", a)
	}
}
