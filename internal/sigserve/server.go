package sigserve

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rev/internal/chash"
	"rev/internal/sigtable"
	"rev/internal/telemetry"
)

// publishedTable is one immutable published generation of a module's
// table: metadata, the shared decrypted snapshot, its wire encoding
// (rendered once at publish time so snapshot fetches are a copy-free
// write), and the generation counter. Hot swap replaces the whole value
// through an atomic pointer; in-flight requests keep serving the
// generation they loaded.
type publishedTable struct {
	table sigtable.Table
	snap  *sigtable.Snapshot
	wire  []byte
	epoch uint64
}

// tenant is one namespace of modules. Module sets are fixed after the
// first Publish of each name, but each module's table may be hot-swapped
// at any time. Each tenant also retains a bounded set of uploaded
// attestation evidence streams (MsgEvidencePut), evicting oldest-first.
type tenant struct {
	mu      sync.RWMutex
	modules map[string]*atomic.Pointer[publishedTable]

	emu      sync.Mutex
	evidence map[string][]byte
	evOrder  []string // upload order; front is evicted first
	evBytes  uint64
}

func (t *tenant) slot(module string) *atomic.Pointer[publishedTable] {
	t.mu.RLock()
	p := t.modules[module]
	t.mu.RUnlock()
	return p
}

// Server hosts signature tables for any number of tenants and serves the
// wire protocol over a net.Listener. All methods are safe for concurrent
// use; Publish may be called while connections are live (hot swap).
type Server struct {
	mu      sync.Mutex
	tenants map[string]*tenant
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	epoch   atomic.Uint64

	// Delay, when positive, is slept before serving each request — the
	// benchmark harness's injected service latency (loopback ladder in
	// EXPERIMENTS.md). Read atomically; adjustable while serving.
	delay atomic.Int64

	// faultAfter, when armed (>= 0), counts down per request; when it
	// reaches zero the connection is dropped mid-request without a
	// response. Test hook for the client's degradation path.
	faultAfter atomic.Int64

	// Evidence retention policy: streams per tenant and bytes per
	// stream. Read atomically; adjustable while serving.
	evMaxStreams atomic.Int64
	evMaxBytes   atomic.Int64

	tel *serverTelemetry
}

// Evidence retention defaults (see SetEvidenceRetention).
const (
	// DefaultEvidenceStreams is how many evidence streams a tenant
	// retains before oldest-first eviction.
	DefaultEvidenceStreams = 64
	// DefaultEvidenceBytes is the per-stream size cap; larger uploads
	// are rejected with CodeEvidenceTooLarge.
	DefaultEvidenceBytes = 4 << 20
)

// serverTelemetry bundles the server-side metric handles (nil when
// telemetry is disabled; every site nil-checks).
type serverTelemetry struct {
	requests    *telemetry.Counter
	errors      *telemetry.Counter
	lookups     *telemetry.ShardedCounter
	snapshots   *telemetry.Counter
	latency     *telemetry.Histogram
	conns       *telemetry.Gauge
	swaps       *telemetry.Counter
	evUploads   *telemetry.Counter
	evEvictions *telemetry.Counter
	evRetained  *telemetry.Gauge
}

// NewServer returns an empty server. Attach telemetry with
// Server.Instrument, publish tables with Publish, then Serve.
func NewServer() *Server {
	s := &Server{
		tenants: make(map[string]*tenant),
		conns:   make(map[net.Conn]struct{}),
	}
	s.faultAfter.Store(-1)
	s.evMaxStreams.Store(DefaultEvidenceStreams)
	s.evMaxBytes.Store(DefaultEvidenceBytes)
	return s
}

// SetEvidenceRetention sets the per-tenant evidence retention policy:
// at most streams retained streams (oldest evicted first) and at most
// maxBytes per uploaded stream (larger uploads rejected). Zero or
// negative values keep the current setting.
func (s *Server) SetEvidenceRetention(streams int, maxBytes int) {
	if streams > 0 {
		s.evMaxStreams.Store(int64(streams))
	}
	if maxBytes > 0 {
		s.evMaxBytes.Store(int64(maxBytes))
	}
}

// Instrument registers the server's metrics in the Set's registry
// (docs/OBSERVABILITY.md "sigserve metrics"). Safe to skip: an
// uninstrumented server emits nothing.
func (s *Server) Instrument(set *telemetry.Set) {
	reg := set.Registry()
	if reg == nil {
		return
	}
	s.tel = &serverTelemetry{
		requests:  reg.Counter("sigserve_server_requests_total", "wire requests served"),
		errors:    reg.Counter("sigserve_server_errors_total", "requests answered with MsgError"),
		lookups:   reg.Sharded("sigserve_server_lookups_total", "lookup requests served, sharded by tenant", 8),
		snapshots: reg.Counter("sigserve_server_snapshots_total", "full snapshot fetches served"),
		latency:   reg.Histogram("sigserve_server_request_ns", "request service time, ns"),
		conns:     reg.Gauge("sigserve_server_connections", "live client connections"),
		swaps:     reg.Counter("sigserve_server_hot_swaps_total", "table generations published over live serving"),

		evUploads:   reg.Counter("sigserve_server_evidence_uploads_total", "evidence streams accepted"),
		evEvictions: reg.Counter("sigserve_server_evidence_evictions_total", "evidence streams evicted by retention"),
		evRetained:  reg.Gauge("sigserve_server_evidence_retained_bytes", "evidence bytes currently retained, all tenants"),
	}
}

// SetDelay installs an artificial per-request service delay (0 disables).
func (s *Server) SetDelay(d time.Duration) { s.delay.Store(int64(d)) }

// FaultAfter arms the fault injector: after n more requests the serving
// connection is dropped without a response, and every later request on
// any connection is dropped too (the "server died mid-run" scenario).
// n < 0 disarms.
func (s *Server) FaultAfter(n int64) { s.faultAfter.Store(n) }

// Publish installs (or hot-swaps) a module table under a tenant. The
// snapshot must be immutable, as sigtable.Snapshot guarantees; the
// server renders its wire image once here. Returns the generation number
// assigned to this publish.
func (s *Server) Publish(tenantName, module string, tbl sigtable.Table, snap *sigtable.Snapshot) uint64 {
	pub := &publishedTable{
		table: tbl,
		snap:  snap,
		wire:  snap.AppendWire(nil),
		epoch: s.epoch.Add(1),
	}
	s.mu.Lock()
	t := s.tenants[tenantName]
	if t == nil {
		t = &tenant{modules: make(map[string]*atomic.Pointer[publishedTable])}
		s.tenants[tenantName] = t
	}
	s.mu.Unlock()
	t.mu.Lock()
	slot := t.modules[module]
	swap := slot != nil
	if slot == nil {
		slot = new(atomic.Pointer[publishedTable])
		t.modules[module] = slot
	}
	t.mu.Unlock()
	slot.Store(pub)
	if swap && s.tel != nil {
		s.tel.swaps.Inc()
	}
	return pub.epoch
}

// Serve accepts connections on ln until Close. It blocks; run it on its
// own goroutine. Each connection is served concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("sigserve: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, tears down live connections, and waits for
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// serveConn runs one connection: Hello/Welcome handshake, then a
// request/response loop until EOF or protocol error.
func (s *Server) serveConn(conn net.Conn) {
	defer s.dropConn(conn)
	if s.tel != nil {
		s.tel.conns.Add(1)
		defer s.tel.conns.Add(-1)
	}

	// Handshake. The negotiated version is the highest both sides speak:
	// min(server Version, client MaxVersion), rejected outright when the
	// ranges do not overlap.
	f, err := ReadFrame(conn)
	if err != nil || f.Type != MsgHello {
		return
	}
	hello, err := decodeHello(f.Payload)
	if err != nil {
		s.reply(conn, Version, f.ReqID, MsgError, errorMsg{Code: CodeBadRequest, Detail: err.Error()}.encode())
		return
	}
	if hello.MinVersion > Version || hello.MaxVersion < MinSupported {
		s.reply(conn, Version, f.ReqID, MsgError, errorMsg{
			Code:   CodeBadVersion,
			Detail: fmt.Sprintf("server speaks versions [%d,%d], client offered [%d,%d]", MinSupported, Version, hello.MinVersion, hello.MaxVersion),
		}.encode())
		return
	}
	ver := uint8(Version)
	if hello.MaxVersion < ver {
		ver = hello.MaxVersion
	}
	s.mu.Lock()
	t := s.tenants[hello.Tenant]
	s.mu.Unlock()
	if t == nil {
		s.reply(conn, ver, f.ReqID, MsgError, errorMsg{Code: CodeUnknownTenant, Detail: hello.Tenant}.encode())
		return
	}
	if !s.reply(conn, ver, f.ReqID, MsgWelcome, welcomeMsg{Version: ver, Epoch: s.epoch.Load()}.encode()) {
		return
	}

	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if !s.handle(conn, ver, t, hello.Tenant, f) {
			return
		}
	}
}

// handle serves one post-handshake request on a connection negotiated
// at version ver; false tears the connection down.
func (s *Server) handle(conn net.Conn, ver uint8, t *tenant, tenantName string, f Frame) bool {
	start := time.Now()
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if fa := s.faultAfter.Load(); fa >= 0 {
		if s.faultAfter.Add(-1) < 0 {
			s.faultAfter.Store(0) // keep faulting every later request
			return false          // drop mid-request, no response
		}
	}
	if s.tel != nil {
		s.tel.requests.Inc()
		defer func() { s.tel.latency.Observe(uint64(time.Since(start))) }()
	}

	switch f.Type {
	case MsgPing:
		return s.reply(conn, ver, f.ReqID, MsgPong, nil)

	case MsgModules:
		var list moduleListMsg
		t.mu.RLock()
		for _, slot := range t.modules {
			if pub := slot.Load(); pub != nil {
				list.Modules = append(list.Modules, moduleInfo{Table: pub.table, Epoch: pub.epoch})
			}
		}
		t.mu.RUnlock()
		return s.reply(conn, ver, f.ReqID, MsgModuleList, list.encode())

	case MsgSnapshot:
		req, err := decodeSnapshotReq(f.Payload)
		if err != nil {
			return s.sendErr(conn, ver, f.ReqID, CodeBadRequest, err.Error())
		}
		slot := t.slot(req.Module)
		if slot == nil {
			return s.sendErr(conn, ver, f.ReqID, CodeUnknownModule, req.Module)
		}
		pub := slot.Load()
		if s.tel != nil {
			s.tel.snapshots.Inc()
		}
		return s.reply(conn, ver, f.ReqID, MsgSnapshotData,
			snapshotData{Table: pub.table, Epoch: pub.epoch, Recs: pub.wire}.encode())

	case MsgLookup:
		d := dec{b: f.Payload}
		req := decodeLookupReq(&d)
		if err := d.done(); err != nil {
			return s.sendErr(conn, ver, f.ReqID, CodeBadRequest, err.Error())
		}
		res, code, detail := s.lookup(t, tenantName, req)
		if code != 0 {
			return s.sendErr(conn, ver, f.ReqID, code, detail)
		}
		var e enc
		res.append(&e)
		return s.reply(conn, ver, f.ReqID, MsgLookupResult, e.b)

	case MsgLookupBatch:
		batch, err := decodeLookupBatch(f.Payload)
		if err != nil {
			return s.sendErr(conn, ver, f.ReqID, CodeBadRequest, err.Error())
		}
		out := lookupBatchRes{Res: make([]lookupRes, 0, len(batch.Reqs))}
		for _, req := range batch.Reqs {
			res, code, detail := s.lookup(t, tenantName, req)
			if code != 0 {
				return s.sendErr(conn, ver, f.ReqID, code, detail)
			}
			out.Res = append(out.Res, res)
		}
		return s.reply(conn, ver, f.ReqID, MsgLookupBatchResult, out.encode())

	case MsgEvidencePut, MsgEvidenceList, MsgEvidenceGet:
		if ver < VersionEvidence {
			return s.sendErr(conn, ver, f.ReqID, CodeBadRequest,
				fmt.Sprintf("evidence messages need protocol version %d, connection negotiated %d", VersionEvidence, ver))
		}
		return s.handleEvidence(conn, ver, t, f)

	default:
		return s.sendErr(conn, ver, f.ReqID, CodeBadRequest, fmt.Sprintf("unexpected message type %#x", uint8(f.Type)))
	}
}

// handleEvidence serves the version-2 evidence message family against
// the tenant's bounded retention store.
func (s *Server) handleEvidence(conn net.Conn, ver uint8, t *tenant, f Frame) bool {
	switch f.Type {
	case MsgEvidencePut:
		put, err := decodeEvidencePut(f.Payload)
		if err != nil {
			return s.sendErr(conn, ver, f.ReqID, CodeBadRequest, err.Error())
		}
		if put.Name == "" {
			return s.sendErr(conn, ver, f.ReqID, CodeBadRequest, "evidence upload needs a name")
		}
		if max := s.evMaxBytes.Load(); int64(len(put.Stream)) > max {
			return s.sendErr(conn, ver, f.ReqID, CodeEvidenceTooLarge,
				fmt.Sprintf("stream is %d bytes, per-stream cap is %d", len(put.Stream), max))
		}
		evicted, delta := t.retainEvidence(put.Name, put.Stream, int(s.evMaxStreams.Load()))
		if s.tel != nil {
			s.tel.evUploads.Inc()
			s.tel.evEvictions.Add(uint64(evicted))
			s.tel.evRetained.Add(delta)
		}
		return s.reply(conn, ver, f.ReqID, MsgEvidenceAck,
			evidenceAckMsg{Bytes: uint64(len(put.Stream)), Evicted: uint32(evicted)}.encode())

	case MsgEvidenceList:
		var cat evidenceCatalogMsg
		t.emu.Lock()
		for _, name := range t.evOrder {
			cat.Streams = append(cat.Streams, evidenceInfo{Name: name, Bytes: uint64(len(t.evidence[name]))})
		}
		t.emu.Unlock()
		return s.reply(conn, ver, f.ReqID, MsgEvidenceCatalog, cat.encode())

	case MsgEvidenceGet:
		get, err := decodeEvidenceGet(f.Payload)
		if err != nil {
			return s.sendErr(conn, ver, f.ReqID, CodeBadRequest, err.Error())
		}
		t.emu.Lock()
		stream, ok := t.evidence[get.Name]
		t.emu.Unlock()
		if !ok {
			return s.sendErr(conn, ver, f.ReqID, CodeUnknownEvidence, get.Name)
		}
		return s.reply(conn, ver, f.ReqID, MsgEvidenceData, evidenceDataMsg{Stream: stream}.encode())
	}
	return false
}

// retainEvidence stores one stream under the retention policy, evicting
// oldest streams beyond maxStreams. Re-uploading an existing name
// replaces the stream in place (same retention slot). Returns how many
// streams were evicted and the net change in retained bytes.
func (t *tenant) retainEvidence(name string, stream []byte, maxStreams int) (evicted int, delta int64) {
	t.emu.Lock()
	defer t.emu.Unlock()
	if t.evidence == nil {
		t.evidence = make(map[string][]byte)
	}
	if old, ok := t.evidence[name]; ok {
		t.evBytes -= uint64(len(old))
		delta -= int64(len(old))
	} else {
		t.evOrder = append(t.evOrder, name)
	}
	t.evidence[name] = stream
	t.evBytes += uint64(len(stream))
	delta += int64(len(stream))
	for maxStreams > 0 && len(t.evOrder) > maxStreams {
		oldest := t.evOrder[0]
		t.evOrder = t.evOrder[1:]
		t.evBytes -= uint64(len(t.evidence[oldest]))
		delta -= int64(len(t.evidence[oldest]))
		delete(t.evidence, oldest)
		evicted++
	}
	return evicted, delta
}

// lookup answers one lookupReq from the tenant's current table
// generation. A verdict (found or miss) returns code 0; a non-zero code
// means the request itself failed.
func (s *Server) lookup(t *tenant, tenantName string, req lookupReq) (lookupRes, ErrCode, string) {
	slot := t.slot(req.Module)
	if slot == nil {
		return lookupRes{}, CodeUnknownModule, req.Module
	}
	snap := slot.Load().snap
	if s.tel != nil {
		s.tel.lookups.Cell(shardFor(tenantName, s.tel.lookups.Shards())).Inc()
	}
	var (
		entry   sigtable.Entry
		touched []uint64
		err     error
		has     bool
	)
	// The wire controls req.Kind, so kind/format mismatches must answer
	// as protocol errors here — the snapshot readers treat them as API
	// misuse and panic.
	cfiOnly := snap.Meta().Format == sigtable.CFIOnly
	switch req.Kind {
	case kindLookup, kindLookupAll:
		if cfiOnly {
			return lookupRes{}, CodeBadRequest, "signature lookup on a CFI-only table; use edge lookups"
		}
	case kindEdge:
		if !cfiOnly {
			return lookupRes{}, CodeBadRequest, "edge lookup on a hashed-format table; use signature lookups"
		}
	}
	switch req.Kind {
	case kindLookup:
		var want sigtable.Want
		if req.WantFlags&wantTarget != 0 {
			want.CheckTarget, want.Target = true, req.Target
		}
		if req.WantFlags&wantPred != 0 {
			want.CheckPred, want.Pred = true, req.Pred
		}
		entry, touched, err = snap.Lookup(req.End, chash.Sig(req.Sig), want)
		has = err == nil
	case kindLookupAll:
		entry, touched, err = snap.LookupAll(req.End, chash.Sig(req.Sig))
		has = err == nil
	case kindEdge:
		touched, err = snap.LookupEdge(req.End, req.Target)
	default:
		return lookupRes{}, CodeBadRequest, fmt.Sprintf("unknown lookup kind %d", req.Kind)
	}
	res := lookupRes{Touched: touched}
	if err != nil {
		if !sigtable.IsMiss(err) {
			return lookupRes{}, CodeInternal, err.Error()
		}
		res.Verdict = verdictMiss
	}
	if has {
		res.HasEntry = 1
		res.Entry = entry
	}
	return res, 0, ""
}

// reply writes one response frame at the connection's negotiated
// version; false tears the connection down.
func (s *Server) reply(conn net.Conn, ver uint8, reqID uint64, typ MsgType, payload []byte) bool {
	if typ == MsgError && s.tel != nil {
		s.tel.errors.Inc()
	}
	return WriteFrame(conn, Frame{Version: ver, Type: typ, ReqID: reqID, Payload: payload}) == nil
}

func (s *Server) sendErr(conn net.Conn, ver uint8, reqID uint64, code ErrCode, detail string) bool {
	return s.reply(conn, ver, reqID, MsgError, errorMsg{Code: code, Detail: detail}.encode())
}

// shardFor maps a tenant name onto a sharded-counter cell (FNV-1a).
func shardFor(tenant string, shards int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * 1099511628211
	}
	return int(h % uint64(shards))
}
