package sigtable

import "rev/internal/telemetry"

// EmitTelemetry publishes the table's static layout figures under prefix
// (e.g. "rev.sigtable"): installed buckets, records (bucket + spill
// chain), and on-RAM size. When several modules' tables report under the
// same prefix the registry sums them — the suite-level size accounting
// of Sec. V without hand-written aggregation.
func (t *Table) EmitTelemetry(o telemetry.Observer, prefix string) {
	o.ObserveCounter(prefix+".buckets", t.Buckets)
	o.ObserveCounter(prefix+".records", t.Records)
	o.ObserveCounter(prefix+".bytes", t.Size)
	o.ObserveGauge(prefix+".size_ratio", t.SizeRatio())
}
