package evidence

import (
	"fmt"
	"io"
	"time"

	"rev/internal/chash"
	"rev/internal/isa"
	"rev/internal/sigtable"
	"rev/internal/telemetry"
)

// Defaults for Config zero values.
const (
	// DefaultWindow is the committed-block tuples aggregated per segment
	// record when Config.Window is zero.
	DefaultWindow = 64
	// DefaultRing is the emitter ring capacity when Config.Ring is zero.
	DefaultRing = 1024
)

// Config parameterizes an Emitter.
type Config struct {
	// Tenant namespaces the stream; written into the genesis record and
	// checked by verifiers ("" becomes "default", matching sigserve).
	Tenant string
	// Binding is a free-form run-binding string written into the genesis
	// record — conventionally the revsim workload parameters, so
	// revattest can rebuild the matching signature tables (see
	// cmd/revattest's accepted form).
	Binding string
	// Window is the maximum committed-block tuples per segment record
	// (0 = DefaultWindow). Smaller windows checkpoint the path hash more
	// often; the stream bytes change but the attested content does not.
	Window int
	// Ring is the hand-off ring capacity between the commit hot path and
	// the background encoder (0 = DefaultRing; rounded up to a power of
	// two). The ring never drops: a full ring back-pressures the commit
	// path, so the stream is byte-identical at any capacity.
	Ring int
	// Telemetry, when enabled, counts emitter activity in the metrics
	// registry (docs/OBSERVABILITY.md "Evidence"). Never alters the
	// stream bytes.
	Telemetry *telemetry.Set
}

// Stats is a post-run snapshot of emitter activity. Read it after
// Finish returns; counters are not synchronized during the run.
type Stats struct {
	// Blocks counts committed-block tuples absorbed into the stream.
	Blocks uint64
	// Records counts records written, including genesis and final.
	Records uint64
	// Segments and Fences count those record types.
	Segments uint64
	Fences   uint64
	// Bytes counts stream bytes written.
	Bytes uint64
	// RingStalls counts hot-path waits for encoder back-pressure.
	RingStalls uint64
	// EncodeSeconds is the background encoder's busy time — hashing,
	// framing, and writing records. On a multi-core host this work
	// overlaps the run; on a single core it time-slices with it, so
	// wall-clock overhead minus EncodeSeconds approximates the commit
	// hot path's own cost (the number revbench -evidencejson gates).
	EncodeSeconds float64
}

// Emitter produces one evidence stream for one validation run. The
// commit hot path (Commit, Fence — called by the engine on the
// validation goroutine) publishes fixed-size tuples into a bounded SPSC
// ring and never allocates or hashes; a background encoder goroutine
// drains the ring, aggregates segments, computes the chain, and writes
// to the underlying writer — mirroring the telemetry recorder's
// hot/cold split. An Emitter is single-use: Begin once, Finish once.
//
// Ownership: exactly one goroutine may call Commit/Fence (the engine's
// validation goroutine — the run loop when serial, the retire consumer
// when pipelined); Begin and Finish are called by the run driver before
// and after that goroutine is active.
type Emitter struct {
	w   io.Writer
	cfg Config

	ring  *chash.SPSC
	slots []tuple
	stop  chash.StopFlag
	done  chan struct{}

	// Encoder-side state (chain/path/encoding buffers). Begin and Finish
	// also touch it, strictly before the encoder starts and after it
	// joins respectively.
	chain    chainState
	path     pathState
	seq      uint32
	segBuf   []byte // encoded tuples of the open segment
	segCount int
	out      []byte // buffered framed records not yet written to w
	werr     error  // first writer error

	stats       Stats
	stalls      uint64 // producer-side, folded into stats at Finish
	encodeNanos int64  // encoder busy time (segment/record work), folded at Finish

	began    bool
	finished bool

	// Pre-resolved metric handles (nil-safe no-ops when telemetry off).
	mBlocks, mRecords, mSegments *telemetry.Counter
	mFences, mBytes, mStalls     *telemetry.Counter
}

// NewEmitter creates an emitter that writes the evidence stream to w.
// Nothing is written until Begin.
func NewEmitter(w io.Writer, cfg Config) *Emitter {
	if cfg.Tenant == "" {
		cfg.Tenant = "default"
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	e := &Emitter{w: w, cfg: cfg}
	reg := cfg.Telemetry.Registry()
	e.mBlocks = reg.Counter("evidence_blocks_total", "committed-block tuples absorbed into evidence streams")
	e.mRecords = reg.Counter("evidence_records_total", "evidence records written (all types)")
	e.mSegments = reg.Counter("evidence_segments_total", "evidence segment records written")
	e.mFences = reg.Counter("evidence_fences_total", "evidence fence records written")
	e.mBytes = reg.Counter("evidence_bytes_total", "evidence stream bytes written")
	e.mStalls = reg.Counter("evidence_ring_stalls_total", "commit-path waits for evidence encoder back-pressure")
	return e
}

// Begin writes the genesis record binding the stream to the run's
// validation format and module map, then starts the background encoder.
// It must be called exactly once, before the run executes.
func (e *Emitter) Begin(format sigtable.Format, mods []ModuleRange) error {
	if e.began {
		return fmt.Errorf("evidence: emitter already began a stream (emitters are single-use)")
	}
	if e.w == nil {
		return fmt.Errorf("evidence: emitter has no writer")
	}
	e.began = true
	g := Genesis{
		StreamVersion: StreamVersion,
		Format:        format,
		Window:        e.cfg.Window,
		Tenant:        e.cfg.Tenant,
		Binding:       e.cfg.Binding,
		Modules:       mods,
	}
	e.busy(func() {
		e.writeRecord(recGenesis, encodeGenesis(g))
		e.flush()
	})
	if e.werr != nil {
		return e.werr
	}
	e.ring = chash.NewSPSC(e.cfg.Ring)
	e.slots = make([]tuple, e.ring.Cap())
	e.segBuf = make([]byte, 0, e.cfg.Window*tupleSize)
	e.done = make(chan struct{})
	go e.encode()
	return nil
}

// Commit publishes one validated basic-block commit: the block's end
// address, its successor, the terminator kind, and the block signature
// (0 in CFI-only format, which hashes nothing). Hot path: one ring slot
// write, no allocation, no hashing; blocks only when the encoder is an
// entire ring behind.
func (e *Emitter) Commit(end, next uint64, term isa.Kind, sig chash.Sig) {
	e.publish(tuple{end: end, next: next, term: term, sig: sig})
	e.mBlocks.Inc()
}

// Fence publishes a validation-state fence (REV disable/enable, context
// switch). Fences ride the same ring as commits so the stream preserves
// their program order relative to committed blocks.
func (e *Emitter) Fence(kind FenceKind, arg uint64) {
	e.publish(tuple{kind: uint8(kind), arg: arg})
}

func (e *Emitter) publish(t tuple) {
	var b chash.Backoff
	for {
		seq, ok := e.ring.TryAcquire()
		if ok {
			e.slots[e.ring.SlotOf(seq)] = t
			e.ring.Publish()
			return
		}
		e.stalls++
		e.mStalls.Inc()
		b.Wait()
	}
}

// Finish drains the encoder, seals the stream with the final record
// (verdict, block count, final path hash), flushes, and returns the
// first writer error, if any. Must be called after the run's validation
// goroutine has stopped committing.
func (e *Emitter) Finish(o Outcome) error {
	if !e.began {
		return fmt.Errorf("evidence: Finish before Begin")
	}
	if e.finished {
		return fmt.Errorf("evidence: stream already finished")
	}
	e.finished = true
	e.stop.Raise()
	<-e.done
	e.busy(func() {
		e.flushSegment()
		e.writeRecord(recFinal, encodeFinal(nil, o, e.stats.Blocks, e.path.cur))
		e.flush()
	})
	e.stats.RingStalls = e.stalls
	e.stats.EncodeSeconds = float64(e.encodeNanos) / 1e9
	return e.werr
}

// Stats returns the emitter's activity snapshot. Call after Finish.
func (e *Emitter) Stats() Stats { return e.stats }

// encode is the background encoder: it drains the ring in publish
// order, aggregating commits into segments and flushing a segment
// record at every Window tuples and at every fence.
func (e *Emitter) encode() {
	defer close(e.done)
	var b chash.Backoff
	for {
		seq, ok := e.ring.TryPeek()
		if !ok {
			if e.stop.Raised() && e.ring.Drained() {
				return
			}
			b.Wait()
			continue
		}
		b.Reset()
		// Drain everything already published as one timed batch: the
		// clock reads amortize across the batch and idle waits stay out
		// of the busy time.
		start := time.Now()
		for ok {
			t := e.slots[e.ring.SlotOf(seq)]
			e.ring.Release()
			if t.kind == 0 {
				e.segBuf = appendTuple(e.segBuf, t)
				e.segCount++
				e.stats.Blocks++
				if e.segCount >= e.cfg.Window {
					e.flushSegment()
				}
			} else {
				// A fence closes the open segment first, so tuple order
				// across the fence is preserved in the stream.
				e.flushSegment()
				e.writeRecord(recFence, encodeFence(nil, FenceKind(t.kind), t.arg))
				e.stats.Fences++
				e.mFences.Inc()
			}
			seq, ok = e.ring.TryPeek()
		}
		e.encodeNanos += int64(time.Since(start))
	}
}

// busy runs one batch of encoder-side work (hashing, framing, writing)
// and accumulates its wall time into Stats.EncodeSeconds. Timed per
// record batch, not per tuple, so the clock reads are amortized.
func (e *Emitter) busy(f func()) {
	start := time.Now()
	f()
	e.encodeNanos += int64(time.Since(start))
}

// flushSegment seals the open segment (if any) into a segment record,
// advancing the path accumulator.
func (e *Emitter) flushSegment() {
	if e.segCount == 0 {
		return
	}
	path := e.path.absorb(e.segBuf)
	payload := encodeSegment(nil, e.segBuf, e.segCount, path)
	e.writeRecord(recSegment, payload)
	e.stats.Segments++
	e.mSegments.Inc()
	e.segBuf = e.segBuf[:0]
	e.segCount = 0
}

// writeRecord chains and frames one record into the output buffer,
// flushing to the writer when the buffer grows large.
func (e *Emitter) writeRecord(typ uint8, payload []byte) {
	chain := e.chain.next(typ, e.seq, payload)
	e.out = appendRecord(e.out, typ, e.seq, payload, chain)
	e.seq++
	e.stats.Records++
	e.mRecords.Inc()
	if len(e.out) >= 32<<10 {
		e.flush()
	}
}

// flush writes the buffered records to the underlying writer, retaining
// the first error. After an error the emitter keeps draining the ring
// (so the hot path never deadlocks) but stops writing.
func (e *Emitter) flush() {
	if len(e.out) == 0 {
		return
	}
	if e.werr == nil {
		n, err := e.w.Write(e.out)
		e.stats.Bytes += uint64(n)
		e.mBytes.Add(uint64(n))
		if err != nil {
			e.werr = fmt.Errorf("evidence: writing stream: %w", err)
		}
	}
	e.out = e.out[:0]
}
