// Command revbench regenerates the paper's tables and figures.
//
// Usage:
//
//	revbench -exp all                 # everything (long)
//	revbench -exp fig7                # one experiment
//	revbench -exp fig6 -instrs 2e6    # longer runs
//	revbench -exp tablesize -scale 0.1
//	revbench -exp fig6,fig7 -json BENCH_hotpath.json \
//	    -ref fig6=4.863,fig7=4.789    # machine-readable perf record
//
// Experiments: table1, table2, bbstats, fig6, fig7, fig8, fig9, fig10,
// fig11, fig12, tablesize, cfionly, softcfi, power, all.
//
// With -json, revbench also runs a hot-path probe — one REV-protected
// workload measured with runtime.MemStats around it — and writes wall time
// per experiment plus validated-blocks/sec, allocations/block, and memo hit
// rates to the given file. -ref name=seconds pairs embed a reference (e.g.
// pre-optimization) wall time per experiment so the file records the
// speedup alongside the measurement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rev/internal/core"
	"rev/internal/experiments"
	"rev/internal/sigtable"
	"rev/internal/stats"
	"rev/internal/workload"
)

// expTiming is one experiment's wall-clock record.
type expTiming struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	// RefSeconds/Speedup are present when -ref supplied a reference time.
	RefSeconds float64 `json:"ref_seconds,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
}

// hotPath records the per-block cost probe: a single REV-protected run
// bracketed by runtime.ReadMemStats.
type hotPath struct {
	Workload       string  `json:"workload"`
	Instrs         uint64  `json:"instrs"`
	Blocks         uint64  `json:"blocks"`
	WallSeconds    float64 `json:"wall_seconds"`
	BlocksPerSec   float64 `json:"blocks_per_sec"`
	Mallocs        uint64  `json:"mallocs"`
	AllocsPerBlock float64 `json:"allocs_per_block"`
	MemoHits       uint64  `json:"memo_hits"`
	MemoMisses     uint64  `json:"memo_misses"`
}

type benchReport struct {
	Generated   string      `json:"generated"`
	Instrs      uint64      `json:"instrs"`
	Scale       float64     `json:"scale"`
	Experiments []expTiming `json:"experiments"`
	HotPath     *hotPath    `json:"hotpath,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (comma separated), or 'all'")
	instrs := flag.Uint64("instrs", 1_000_000, "committed instructions per benchmark run")
	scale := flag.Float64("scale", 1.0, "workload static-size scale (1.0 = paper-matched)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	attackInstrs := flag.Uint64("attackinstrs", 100_000, "instruction budget per attack scenario")
	jsonPath := flag.String("json", "", "write machine-readable timings (e.g. BENCH_hotpath.json)")
	ref := flag.String("ref", "", "reference wall times as id=seconds pairs, comma separated")
	flag.Parse()

	refTimes, err := parseRef(*ref)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revbench: -ref: %v\n", err)
		os.Exit(2)
	}

	suiteCfg := experiments.Config{
		MaxInstrs: *instrs,
		Scale:     *scale,
		Parallel:  *parallel,
	}
	suite := experiments.NewSuite(suiteCfg)

	type expFn func(s *experiments.Suite) (*stats.Table, error)
	table := func(t *stats.Table) expFn {
		return func(*experiments.Suite) (*stats.Table, error) { return t, nil }
	}
	all := []struct {
		id  string
		run expFn
	}{
		{"table2", table(experiments.Table2())},
		{"table1", func(*experiments.Suite) (*stats.Table, error) { return experiments.Table1(*attackInstrs) }},
		{"bbstats", (*experiments.Suite).BBStats},
		{"fig6", (*experiments.Suite).Fig6},
		{"fig7", (*experiments.Suite).Fig7},
		{"fig8", (*experiments.Suite).Fig8},
		{"fig9", (*experiments.Suite).Fig9},
		{"fig10", (*experiments.Suite).Fig10},
		{"fig11", (*experiments.Suite).Fig11},
		{"fig12", (*experiments.Suite).Fig12},
		{"tablesize", (*experiments.Suite).TableSizes},
		{"cfionly", (*experiments.Suite).CFIOnly},
		{"softcfi", (*experiments.Suite).SoftCFI},
		{"power", table(experiments.Power())},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Instrs:    *instrs,
		Scale:     *scale,
	}
	ran := 0
	for _, e := range all {
		if !want["all"] && !want[e.id] {
			continue
		}
		if *jsonPath != "" {
			// Benchmarking mode: time each experiment against a fresh suite
			// so figures sharing cached simulation runs (e.g. fig6/fig7)
			// each pay — and report — their full cost.
			suite = experiments.NewSuite(suiteCfg)
		}
		start := time.Now()
		t, err := e.run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		et := expTiming{ID: e.id, WallSeconds: round3(wall)}
		if r, ok := refTimes[e.id]; ok && wall > 0 {
			et.RefSeconds = r
			et.Speedup = round3(r / wall)
		}
		report.Experiments = append(report.Experiments, et)
		fmt.Println(t.String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "revbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	if *jsonPath != "" {
		hp, err := probeHotPath(*instrs, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: hot-path probe: %v\n", err)
			os.Exit(1)
		}
		report.HotPath = hp
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "revbench: wrote %s\n", *jsonPath)
	}
}

// probeHotPath runs one REV-protected workload and measures simulator-side
// throughput: validated blocks per second and heap allocations per block.
func probeHotPath(instrs uint64, scale float64) (*hotPath, error) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		return nil, err
	}
	p = p.Scaled(scale)
	rc := core.DefaultRunConfig()
	rc.MaxInstrs = instrs
	cfg := core.DefaultConfig()
	cfg.Format = sigtable.Normal
	rc.REV = &cfg

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.Run(p.Builder(), rc)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, err
	}
	if res.Violation != nil {
		return nil, fmt.Errorf("clean workload flagged: %v", res.Violation)
	}
	blocks := res.Pipe.BBCount
	hp := &hotPath{
		Workload:    p.Name,
		Instrs:      res.Pipe.Instrs,
		Blocks:      blocks,
		WallSeconds: round3(wall),
		Mallocs:     after.Mallocs - before.Mallocs,
		MemoHits:    res.Engine.MemoHits,
		MemoMisses:  res.Engine.MemoMisses,
	}
	if wall > 0 {
		hp.BlocksPerSec = round3(float64(blocks) / wall)
	}
	if blocks > 0 {
		hp.AllocsPerBlock = round3(float64(hp.Mallocs) / float64(blocks))
	}
	return hp, nil
}

func parseRef(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("want id=seconds, got %q", pair)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", pair, err)
		}
		out[kv[0]] = v
	}
	return out, nil
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}
