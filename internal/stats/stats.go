// Package stats provides aggregation helpers and aligned-text table
// rendering for the experiment harness. The paper reports per-benchmark
// bars (Figures 6–12) and summary means; the harness reproduces them as
// text tables with one row per benchmark plus an aggregate row.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean (the paper's aggregation for IPC
// across repeated runs). Zero or negative inputs are rejected by returning
// 0 to avoid division blowups.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// GeoMean returns the geometric mean of positive values. It accumulates
// in log space: a running product overflows float64 after a few hundred
// large inputs (or underflows to 0 for small ones) and poisons the mean,
// whereas the sum of logs stays in range for any realistic sample count.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed under the table (paper-vs-measured commentary).
	Notes []string
}

// AddRow appends a row; values are formatted with %v unless already
// strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Pct formats a percentage with two decimals.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", x) }

// F3 formats a float with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }

// KB formats a byte count in KiB.
func KB(b uint64) string { return fmt.Sprintf("%.1fKB", float64(b)/1024) }
