package core

import (
	"fmt"

	"rev/internal/branch"
	"rev/internal/cfg"
	"rev/internal/cpu"
	"rev/internal/crypt"
	"rev/internal/isa"
	"rev/internal/mem"
	"rev/internal/prog"
)

// ThreadedRunConfig extends RunConfig with round-robin time slicing, the
// experiment behind requirement R4: context switches must not force
// signature-table reloads. The SC is address-tagged and tables are
// per-module, so entries survive switches; FlushSCOnSwitch exists as the
// ablation representing designs (like the CAM tables of Arora et al.) that
// must reload validation state on every switch.
type ThreadedRunConfig struct {
	RunConfig
	// Quantum is the time slice in committed instructions.
	Quantum uint64
	// SwitchPenalty is the fixed pipeline drain/refill cost per switch.
	SwitchPenalty uint64
	// FlushSCOnSwitch discards the signature cache at every switch.
	FlushSCOnSwitch bool
}

// DefaultThreadedRunConfig uses a 20k-instruction quantum.
func DefaultThreadedRunConfig() ThreadedRunConfig {
	return ThreadedRunConfig{
		RunConfig:     DefaultRunConfig(),
		Quantum:       20_000,
		SwitchPenalty: 200,
	}
}

// threadCtx is one thread's architectural state.
type threadCtx struct {
	x      [isa.NumIntRegs]uint64
	f      [isa.NumFPRegs]float64
	pc     uint64
	halted bool
	instrs uint64
}

// ThreadedResult extends Result with per-thread accounting.
type ThreadedResult struct {
	Result
	Switches     uint64
	ThreadInstrs []uint64
}

// RunThreads time-slices several threads — each starting at a named
// function symbol of the loaded program — over one simulated core with one
// shared REV engine. Each thread gets a private stack region. The run ends
// when every thread halts or the global instruction budget is exhausted.
func RunThreads(build func() (*prog.Program, error), entries []string, trc ThreadedRunConfig) (res *ThreadedResult, err error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: RunThreads needs at least one entry")
	}
	rc := trc.RunConfig
	if rc.MaxInstrs == 0 {
		rc.MaxInstrs = 1_000_000
	}
	if trc.Quantum == 0 {
		trc.Quantum = 20_000
	}
	measured, err := build()
	if err != nil {
		return nil, fmt.Errorf("core: building program: %w", err)
	}

	hier := mem.New(rc.Mem)
	pred := branch.New(rc.Branch)
	pipe := cpu.NewPipeline(rc.Pipe, hier, pred)
	mach := cpu.NewMachine(measured)
	tel := newRunTelemetry(rc.Telemetry)

	var engine *Engine
	if rc.REV != nil {
		twin, err := build()
		if err != nil {
			return nil, err
		}
		// Profile every thread's behaviour on the twin.
		tm := cpu.NewMachine(twin)
		profiler := cfg.NewProfiler()
		profiler.Attach(tm)
		for ti, name := range entries {
			addr, ok := lookupAny(twin, name)
			if !ok {
				return nil, fmt.Errorf("core: entry %q not found", name)
			}
			tm.PC = addr
			tm.Halted = false
			tm.X = [isa.NumIntRegs]uint64{}
			tm.X[isa.RegSP] = threadStack(ti)
			if _, err := tm.Run(rc.MaxInstrs / uint64(len(entries))); err != nil {
				return nil, fmt.Errorf("core: profiling thread %q: %w", name, err)
			}
		}
		static := cfg.Analyze(measured, cfg.DefaultAnalyzeOptions())
		ks := crypt.NewKeyStore(crypt.DeriveKey(rc.KeySeed, "cpu-private"))
		engine = NewEngine(*rc.REV, measured.Mem, hier, ks)
		for i, mod := range measured.Modules {
			bld := cfg.NewBuilder(mod, rc.REV.Limits)
			profiler.Apply(bld)
			static.Apply(bld)
			g, err := bld.Build()
			if err != nil {
				return nil, err
			}
			key := crypt.DeriveKey(rc.KeySeed, fmt.Sprintf("module-%d-%s", i, mod.Name))
			if err := engine.AddModule(g, key); err != nil {
				return nil, err
			}
		}
		pipe.Hook = engine.Hook
		mach.SysHandler = engine.SysHandler
		pipe.Cfg.MaxBBInstrs = rc.REV.Limits.MaxInstrs
		pipe.Cfg.MaxBBStores = rc.REV.Limits.MaxStores
		engine.tel = tel
	}
	if tel != nil {
		registerRunViews(&parts{hier: hier, pred: pred, pipe: pipe, engine: engine}, rc.Telemetry)
	}
	if rc.Evidence != nil {
		if engine == nil {
			return nil, fmt.Errorf("core: evidence requires a REV engine (set rc.REV)")
		}
		if err := rc.Evidence.Begin(engine.Cfg.Format, engine.moduleRanges()); err != nil {
			return nil, fmt.Errorf("core: starting evidence stream: %w", err)
		}
		engine.ev = rc.Evidence
		// Seal the stream on every exit path: violations and transport
		// aborts leave evidence too (see evidenceOutcome).
		defer func() {
			engine.ev = nil
			var r *Result
			if res != nil {
				r = &res.Result
			}
			if ferr := rc.Evidence.Finish(evidenceOutcome(r, err)); ferr != nil && err == nil {
				res, err = nil, fmt.Errorf("core: sealing evidence stream: %w", ferr)
			}
		}()
	}

	// Thread contexts.
	threads := make([]*threadCtx, len(entries))
	for i, name := range entries {
		addr, ok := lookupAny(measured, name)
		if !ok {
			return nil, fmt.Errorf("core: entry %q not found", name)
		}
		t := &threadCtx{pc: addr}
		t.x[isa.RegSP] = threadStack(i)
		threads[i] = t
	}

	res = &ThreadedResult{}
	res.ThreadInstrs = make([]uint64, len(threads))
	cur := 0
	load := func(t *threadCtx) {
		mach.X = t.x
		mach.F = t.f
		mach.PC = t.pc
		mach.Halted = t.halted
	}
	save := func(t *threadCtx) {
		t.x = mach.X
		t.f = mach.F
		t.pc = mach.PC
		t.halted = mach.Halted
	}
	load(threads[cur])

	var vio *Violation
	allHalted := func() bool {
		for _, t := range threads {
			if !t.halted {
				return false
			}
		}
		return true
	}

outer:
	for pipe.Stats.Instrs < rc.MaxInstrs && !allHalted() {
		// Run one quantum of the current thread, then continue to the next
		// basic-block boundary: like external interrupts, switches are
		// serviced only after the current block validates (Sec. IV.A).
		var ran uint64
		for (ran < trc.Quantum || pipe.InBlock()) && !mach.Halted && pipe.Stats.Instrs < rc.MaxInstrs {
			pc, in, err := mach.Step()
			if err != nil {
				if engine != nil {
					vio = &Violation{Reason: ViolationHash, BBStart: pc, BBEnd: pc, Target: pc}
					break outer
				}
				return nil, err
			}
			if err := pipe.Next(cpu.DynInstr{PC: pc, In: in, NextPC: mach.PC, MemAddr: mach.MemAddr}); err != nil {
				if v, ok := err.(*Violation); ok {
					vio = v
					break outer
				}
				return nil, err
			}
			ran++
			res.ThreadInstrs[cur]++
		}
		save(threads[cur])
		// Pick the next runnable thread.
		next := cur
		for off := 1; off <= len(threads); off++ {
			cand := (cur + off) % len(threads)
			if !threads[cand].halted {
				next = cand
				break
			}
		}
		if next != cur {
			res.Switches++
			if tel != nil {
				tel.contextSwitch(next)
			}
			pipe.ChargeSwitch(trc.SwitchPenalty)
			if engine != nil {
				engine.OnContextSwitch()
				if trc.FlushSCOnSwitch {
					engine.SC.Flush()
				}
			}
			cur = next
		}
		load(threads[cur])
	}
	save(threads[cur])

	res.Pipe = pipe.Stats
	res.Branch = pred.Stats
	res.UniqueBranches = pipe.UniqueBranches()
	res.L1D = hier.L1D.Stats
	res.L1I = hier.L1I.Stats
	res.L2 = hier.L2.Stats
	res.DRAM = hier.DRAM.Stats
	res.Output = mach.Output
	res.Halted = allHalted()
	res.Violation = vio
	if engine != nil {
		res.Engine = engine.Stats
		res.Tables = engine.Tables
		s := engine.SC.Stats
		res.SC = SCView{
			Probes: s.Probes, Hits: s.Hits,
			PartialMisses: s.PartialMisses, CompleteMisses: s.CompleteMisses,
			Misses: s.Misses(), MissRate: s.MissRate(),
		}
	}
	return res, nil
}

// threadStack returns thread i's private stack top.
func threadStack(i int) uint64 { return prog.StackBase - uint64(i)*0x10_0000 }

// lookupAny resolves a function symbol across all loaded modules.
func lookupAny(p *prog.Program, name string) (uint64, bool) {
	for _, m := range p.Modules {
		if a, ok := m.Lookup(name); ok {
			return a, true
		}
	}
	return 0, false
}
