package cpu

import (
	"rev/internal/branch"
	"rev/internal/isa"
	"rev/internal/mem"
)

// PipeConfig describes the out-of-order core (Table 2) plus the REV
// deferred-update extensions of Sec. IV.A.
type PipeConfig struct {
	FetchWidth    int
	DispatchWidth int
	CommitWidth   int
	ROBSize       int
	LSQSize       int
	// FrontendDepth is the pipeline depth in cycles between an
	// instruction's fetch and its earliest execution; with the execute and
	// commit stages (2 more cycles minimum) it realizes the paper's S = 16
	// stages between final fetch and commit, chosen so the 16-cycle CHG
	// latency is fully overlapped and never stalls commit on an SC hit
	// (Sec. VI).
	FrontendDepth uint64
	// MispredictPenalty is the redirect bubble after a branch resolves on
	// the wrong path (in addition to refilling FrontendDepth).
	MispredictPenalty uint64
	// BTBMissPenalty is the small decode-redirect bubble when a direct
	// jump/call misses the BTB.
	BTBMissPenalty uint64

	// Function unit counts (Table 2: 2 ALU, 2 FPU, 2 load, 2 store).
	IntALU     int
	FPU        int
	LoadPorts  int
	StorePorts int

	// Operation latencies in cycles.
	LatALU, LatMul, LatDiv, LatFPU, LatFPDiv uint64

	// REV deferred state update (0 disables the extension modelling):
	// ExtensionSize is the post-commit ROB extension in instructions;
	// StoreExtension is the store-queue extension in stores. Committed
	// instructions occupy extension slots until their basic block
	// validates; a full extension stalls commit (requirement R5).
	ExtensionSize  int
	StoreExtension int

	// MaxBBInstrs/MaxBBStores are the artificial basic-block split limits
	// the front end applies (must match the cfg.Limits used to build the
	// signature tables).
	MaxBBInstrs int
	MaxBBStores int

	// InterruptInterval, when non-zero, raises an external interrupt every
	// that many cycles. Following Sec. IV.A, external interrupts are
	// handled only after the current basic block completes validation:
	// the pipeline is flushed (like a mispredict) and the handler runs for
	// InterruptHandler cycles before fetch resumes.
	InterruptInterval uint64
	InterruptHandler  uint64
}

// DefaultPipeConfig mirrors Table 2.
func DefaultPipeConfig() PipeConfig {
	return PipeConfig{
		FetchWidth:        4,
		DispatchWidth:     4,
		CommitWidth:       4,
		ROBSize:           128,
		LSQSize:           92,
		FrontendDepth:     14,
		MispredictPenalty: 3,
		BTBMissPenalty:    2,
		IntALU:            2,
		FPU:               2,
		LoadPorts:         2,
		StorePorts:        2,
		LatALU:            1,
		LatMul:            3,
		LatDiv:            12,
		LatFPU:            4,
		LatFPDiv:          12,
		ExtensionSize:     64,
		StoreExtension:    16,
		MaxBBInstrs:       64,
		MaxBBStores:       16,
	}
}

// DynInstr is one committed-path dynamic instruction handed to the timing
// model by the driver (the functional Machine produces the stream).
type DynInstr struct {
	PC      uint64
	In      isa.Instr
	NextPC  uint64 // where control actually went
	MemAddr uint64 // effective address for LD/ST
}

// BBInfo describes a dynamic basic block at the moment its terminating
// instruction has been fetched; the REV engine validates against it.
type BBInfo struct {
	Start      uint64
	End        uint64
	Term       isa.Kind
	Artificial bool
	NumInstrs  int
	// FirstFetch/LastFetch are the fetch cycles of the block's first and
	// last instructions (the CHG hashing window).
	FirstFetch uint64
	LastFetch  uint64
	// NextPC is the actual address control flowed to after End.
	NextPC uint64
}

// BBHook is implemented by the REV engine. It is invoked once per dynamic
// basic block and returns the cycle at which validation data (SC entry +
// CHG digest) is ready; commit of the block's terminating instruction
// stalls until then. A non-nil error is a validation failure and aborts
// the run.
type BBHook func(info BBInfo) (validationReady uint64, err error)

// PipeStats aggregates the run.
type PipeStats struct {
	Instrs            uint64
	Cycles            uint64
	CommittedBranches uint64
	Mispredicts       uint64
	// ValidationStallCycles accumulates commit delay attributable to REV
	// validation (time validationReady exceeded the commit time the
	// instruction would otherwise have had).
	ValidationStallCycles uint64
	BBCount               uint64
	// Interrupts counts serviced external interrupts;
	// InterruptDeferCycles accumulates how long each waited for the
	// current block's validation boundary (Sec. IV.A).
	Interrupts           uint64
	InterruptDeferCycles uint64
}

// UniqueBranches returns the number of distinct committed control-flow
// instruction addresses observed so far.
func (p *Pipeline) UniqueBranches() int { return p.uniqueBranches.len() }

// InBlock reports whether the front end is mid-basic-block (the next
// instruction would continue the current block). Context switches must
// wait for a block boundary, as interrupts do (Sec. IV.A).
func (p *Pipeline) InBlock() bool { return p.bbValid }

// ChargeSwitch models an OS context switch: fetch stops for the given
// drain/refill penalty after the last commit, and the current fetch line
// is forgotten.
func (p *Pipeline) ChargeSwitch(penalty uint64) {
	p.fetchEarliest = maxU(p.fetchEarliest, p.lastCommit+penalty)
	p.curLine = 0
	p.bbValid = false
}

// IPC returns instructions per cycle.
func (s *PipeStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// Pipeline is the timestamp-based cycle-level model of the OOO core. Every
// dynamic instruction is assigned fetch, dispatch, execute-complete and
// commit cycles subject to bandwidth, dependency, structural, memory and —
// with a BBHook attached — REV validation constraints.
type Pipeline struct {
	Cfg  PipeConfig
	Hier *mem.Hierarchy
	Pred *branch.Predictor
	Hook BBHook

	Stats PipeStats

	seq    uint64
	nMem   uint64 // loads+stores, indexes the LSQ ring
	nStore uint64 // stores only, indexes the store-extension ring

	// Fetch state.
	fetchEarliest uint64 // redirect constraint
	fetchCycleCur uint64
	fetchedInCur  int
	curLine       uint64
	curLineExtra  uint64 // stall contribution of the current line's fill

	// Register scoreboard: int regs then FP regs.
	regReady [isa.NumIntRegs + isa.NumFPRegs]uint64

	// Function units: next-free cycle per unit, grouped by class.
	fuALU, fuFPU, fuLoad, fuStore []uint64

	// ROB / LSQ / REV-extension occupancy rings: cycle at which the slot
	// frees (commit or validation release).
	robRing   []uint64
	lsqRing   []uint64
	extRing   []uint64
	storeRing []uint64

	// Commit state.
	lastCommit   uint64
	commitCycle  uint64
	commitsInCur int

	// Store-to-load forwarding: bounded open-addressing table keyed by
	// effective address (see tables.go).
	stores *storeTable

	// uniqueBranches tracks distinct committed control-flow instruction
	// addresses (Figure 9's metric).
	uniqueBranches *addrSet

	// Interrupt state.
	nextInterrupt uint64

	// Current basic-block tracking (front-end view, mirrors the REV
	// engine's dynamic block delimitation).
	bbStart      uint64
	bbFirstFetch uint64
	bbInstrs     int
	bbStores     int
	bbValid      bool
	// pendingRelease holds instructions of blocks whose validation time is
	// not yet known; indexed by seq ring below.
	uncommitted []pendingUnit
}

type pendingUnit struct {
	seq      uint64
	isStore  bool
	storeIdx uint64 // index among stores (valid when isStore)
	lsqIdx   uint64 // index in the LSQ ring (valid for loads and stores)
	isMem    bool
	memAddr  uint64
}

// NewPipeline builds a timing model over a memory hierarchy and predictor.
func NewPipeline(cfg PipeConfig, h *mem.Hierarchy, p *branch.Predictor) *Pipeline {
	pl := &Pipeline{
		Cfg:            cfg,
		Hier:           h,
		Pred:           p,
		fuALU:          make([]uint64, cfg.IntALU),
		fuFPU:          make([]uint64, cfg.FPU),
		fuLoad:         make([]uint64, cfg.LoadPorts),
		fuStore:        make([]uint64, cfg.StorePorts),
		robRing:        make([]uint64, cfg.ROBSize),
		lsqRing:        make([]uint64, cfg.LSQSize),
		stores:         newStoreTable(),
		uniqueBranches: newAddrSet(),
	}
	if cfg.ExtensionSize > 0 {
		pl.extRing = make([]uint64, cfg.ExtensionSize)
	}
	if cfg.StoreExtension > 0 {
		pl.storeRing = make([]uint64, cfg.StoreExtension)
	}
	pl.nextInterrupt = cfg.InterruptInterval
	return pl
}

// Reset returns the timing model to its post-NewPipeline state for
// run-arena reuse: every cycle counter, scoreboard entry, and occupancy
// ring is zeroed in place, the hash tables are cleared, and all grown
// backing is kept, so a reset pipeline replays a run with byte-identical
// timing and allocates nothing. Hook is cleared; the next run re-attaches
// its own.
func (p *Pipeline) Reset() {
	p.Hook = nil
	p.Stats = PipeStats{}
	p.seq, p.nMem, p.nStore = 0, 0, 0
	p.fetchEarliest, p.fetchCycleCur = 0, 0
	p.fetchedInCur = 0
	p.curLine, p.curLineExtra = 0, 0
	p.regReady = [isa.NumIntRegs + isa.NumFPRegs]uint64{}
	zeroCycles(p.fuALU)
	zeroCycles(p.fuFPU)
	zeroCycles(p.fuLoad)
	zeroCycles(p.fuStore)
	zeroCycles(p.robRing)
	zeroCycles(p.lsqRing)
	zeroCycles(p.extRing)
	zeroCycles(p.storeRing)
	p.lastCommit, p.commitCycle = 0, 0
	p.commitsInCur = 0
	p.stores.reset()
	p.uniqueBranches.reset()
	p.nextInterrupt = p.Cfg.InterruptInterval
	p.bbStart, p.bbFirstFetch = 0, 0
	p.bbInstrs, p.bbStores = 0, 0
	p.bbValid = false
	p.uncommitted = p.uncommitted[:0]
}

func zeroCycles(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// pickFU returns the start cycle on the earliest-free unit and books it.
func pickFU(units []uint64, earliest, occupancy uint64) uint64 {
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := maxU(earliest, units[best])
	units[best] = start + occupancy
	return start
}

// fetchSlot assigns a fetch cycle honoring bandwidth and redirects.
func (p *Pipeline) fetchSlot(pc uint64) uint64 {
	c := maxU(p.fetchEarliest, p.fetchCycleCur)
	// Instruction cache: a new line charges its miss stall to this and
	// subsequent fetches (hit latency is pipelined away).
	line := pc &^ (mem.LineSize - 1)
	if line != p.curLine {
		done := p.Hier.Instr(pc, c)
		hit := p.Hier.L1I.Latency()
		extra := uint64(0)
		if done > c+hit {
			extra = done - c - hit
		}
		p.curLine = line
		p.curLineExtra = extra
	}
	c += p.curLineExtra
	p.curLineExtra = 0 // charged once per line
	if c == p.fetchCycleCur {
		if p.fetchedInCur >= p.Cfg.FetchWidth {
			c++
			p.fetchCycleCur = c
			p.fetchedInCur = 1
		} else {
			p.fetchedInCur++
		}
	} else {
		p.fetchCycleCur = c
		p.fetchedInCur = 1
	}
	return c
}

func regIdxFP(fp uint8) int { return isa.NumIntRegs + int(fp%isa.NumFPRegs) }

// srcReady returns when the instruction's source operands are available.
func (p *Pipeline) srcReady(in isa.Instr) uint64 {
	var r uint64
	k := in.Kind()
	switch k {
	case isa.KindFPU, isa.KindFPDiv:
		switch in.Op {
		case isa.ITOF:
			r = p.regReady[in.Rs1]
		case isa.FTOI, isa.FSLT:
			r = maxU(p.regReady[regIdxFP(in.Rs1)], p.regReady[regIdxFP(in.Rs2)])
		default:
			r = maxU(p.regReady[regIdxFP(in.Rs1)], p.regReady[regIdxFP(in.Rs2)])
		}
	default:
		r = maxU(p.regReady[in.Rs1], p.regReady[in.Rs2])
	}
	if k == isa.KindRet {
		r = maxU(r, p.regReady[isa.RegRA])
	}
	return r
}

func (p *Pipeline) writeDest(in isa.Instr, done uint64) {
	k := in.Kind()
	switch k {
	case isa.KindFPU, isa.KindFPDiv:
		switch in.Op {
		case isa.FTOI, isa.FSLT:
			if in.Rd != isa.RegZero {
				p.regReady[in.Rd] = done
			}
		default:
			p.regReady[regIdxFP(in.Rd)] = done
		}
	case isa.KindCall, isa.KindICall:
		p.regReady[isa.RegRA] = done
	case isa.KindStore, isa.KindCondBranch, isa.KindJump, isa.KindRet, isa.KindIJump, isa.KindSys, isa.KindHalt:
		// no register result
	default:
		if in.Rd != isa.RegZero {
			p.regReady[in.Rd] = done
		}
	}
}

// predict runs the front-end predictors for a control-flow instruction and
// returns whether the fetch redirects late (mispredict) plus the penalty
// class. Called at fetch time; resolution applies at execDone.
func (p *Pipeline) predict(di DynInstr) (mispredict bool, smallBubble bool) {
	pc, in := di.PC, di.In
	switch in.Kind() {
	case isa.KindCondBranch:
		taken := di.NextPC != pc+isa.WordSize
		return !p.Pred.UpdateDirection(pc, taken), false
	case isa.KindJump:
		// Direct target, known at decode: BTB miss costs a decode bubble.
		return false, !p.Pred.UpdateTarget(pc, di.NextPC)
	case isa.KindCall:
		p.Pred.PushRAS(pc + isa.WordSize)
		return false, !p.Pred.UpdateTarget(pc, di.NextPC)
	case isa.KindRet:
		return !p.Pred.PopRAS(di.NextPC), false
	case isa.KindIJump:
		return !p.Pred.UpdateTarget(pc, di.NextPC), false
	case isa.KindICall:
		p.Pred.PushRAS(pc + isa.WordSize)
		return !p.Pred.UpdateTarget(pc, di.NextPC), false
	}
	return false, false
}

// Next processes one committed dynamic instruction.
func (p *Pipeline) Next(di DynInstr) error {
	in := di.In
	k := in.Kind()
	i := p.seq
	p.seq++

	// ---- Fetch ----
	fetch := p.fetchSlot(di.PC)
	if !p.bbValid {
		p.bbStart = di.PC
		p.bbFirstFetch = fetch
		p.bbInstrs = 0
		p.bbStores = 0
		p.bbValid = true
	}
	p.bbInstrs++
	if k == isa.KindStore {
		p.bbStores++
	}

	var mispredict, smallBubble bool
	if k.IsControlFlow() && k != isa.KindHalt {
		p.Stats.CommittedBranches++
		p.uniqueBranches.add(di.PC)
		mispredict, smallBubble = p.predict(di)
		if mispredict {
			p.Stats.Mispredicts++
		}
	}

	// ---- Dispatch: ROB and LSQ occupancy ----
	dispatch := fetch + p.Cfg.FrontendDepth
	dispatch = maxU(dispatch, p.robRing[i%uint64(p.Cfg.ROBSize)])
	isMem := k == isa.KindLoad || k == isa.KindStore
	var memSeq, storeIdx uint64
	if isMem {
		memSeq = p.nMem
		p.nMem++
		dispatch = maxU(dispatch, p.lsqRing[memSeq%uint64(p.Cfg.LSQSize)])
	}
	if k == isa.KindStore {
		storeIdx = p.nStore
		p.nStore++
	}

	// ---- Issue / execute ----
	ready := maxU(dispatch, p.srcReady(in))
	var done uint64
	switch k {
	case isa.KindLoad:
		start := pickFU(p.fuLoad, ready, 1)
		addrDone := start + p.Cfg.LatALU
		if st, ok := p.stores.get(di.MemAddr); ok && st.release > addrDone {
			// Store-to-load forwarding from the (extended) store queue:
			// the producing store has not yet drained to the cache.
			done = maxU(addrDone, st.dataReady) + 1
		} else {
			done = p.Hier.Data(di.MemAddr, addrDone, false)
		}
	case isa.KindStore:
		start := pickFU(p.fuStore, ready, 1)
		done = start + p.Cfg.LatALU
	case isa.KindMul:
		done = pickFU(p.fuALU, ready, 1) + p.Cfg.LatMul
	case isa.KindDiv:
		done = pickFU(p.fuALU, ready, p.Cfg.LatDiv) + p.Cfg.LatDiv
	case isa.KindFPU:
		done = pickFU(p.fuFPU, ready, 1) + p.Cfg.LatFPU
	case isa.KindFPDiv:
		done = pickFU(p.fuFPU, ready, p.Cfg.LatFPDiv) + p.Cfg.LatFPDiv
	default:
		done = pickFU(p.fuALU, ready, 1) + p.Cfg.LatALU
	}
	p.writeDest(in, done)

	// Branch resolution redirects the front end.
	if mispredict {
		p.fetchEarliest = maxU(p.fetchEarliest, done+p.Cfg.MispredictPenalty)
		p.curLine = 0 // refetch the target line
	} else if smallBubble {
		p.fetchEarliest = maxU(p.fetchEarliest, fetch+p.Cfg.BTBMissPenalty)
	}

	// ---- Basic block end detection (front-end rule, mirrors cfg.Limits) ----
	bbEnd := k.IsControlFlow() ||
		p.bbInstrs >= p.Cfg.MaxBBInstrs || p.bbStores >= p.Cfg.MaxBBStores
	var validationReady uint64
	if bbEnd && p.Hook != nil {
		vr, err := p.Hook(BBInfo{
			Start:      p.bbStart,
			End:        di.PC,
			Term:       k,
			Artificial: !k.IsControlFlow(),
			NumInstrs:  p.bbInstrs,
			FirstFetch: p.bbFirstFetch,
			LastFetch:  fetch,
			NextPC:     di.NextPC,
		})
		if err != nil {
			return err
		}
		validationReady = vr
	}
	if bbEnd {
		p.Stats.BBCount++
	}

	// ---- Commit (in order, bandwidth-limited) ----
	c := maxU(done+1, p.lastCommit)
	// REV extension occupancy: the slot used by instruction i-E must have
	// been released (its block validated) before i may commit.
	if p.extRing != nil {
		c = maxU(c, p.extRing[i%uint64(len(p.extRing))])
	}
	if k == isa.KindStore && p.storeRing != nil {
		c = maxU(c, p.storeRing[storeIdx%uint64(len(p.storeRing))])
	}
	if bbEnd && validationReady > c {
		p.Stats.ValidationStallCycles += validationReady - c
		c = validationReady
	}
	// Commit bandwidth.
	if c == p.commitCycle {
		if p.commitsInCur >= p.Cfg.CommitWidth {
			c++
			p.commitCycle = c
			p.commitsInCur = 1
		} else {
			p.commitsInCur++
		}
	} else {
		p.commitCycle = c
		p.commitsInCur = 1
	}
	// External interrupts: serviced only at a validated block boundary.
	// The wait from the interrupt's arrival to this commit is the deferral
	// the paper accepts in exchange for precise validated state; servicing
	// flushes the pipeline and runs the handler before fetch resumes.
	if bbEnd && p.Cfg.InterruptInterval > 0 && c >= p.nextInterrupt {
		p.Stats.Interrupts++
		p.Stats.InterruptDeferCycles += c - p.nextInterrupt
		resume := c + p.Cfg.InterruptHandler
		p.fetchEarliest = maxU(p.fetchEarliest, resume)
		p.curLine = 0 // refetch after the handler
		for p.nextInterrupt <= c {
			p.nextInterrupt += p.Cfg.InterruptInterval
		}
	}

	p.lastCommit = c
	p.robRing[i%uint64(p.Cfg.ROBSize)] = c + 1
	if k == isa.KindLoad {
		p.lsqRing[memSeq%uint64(p.Cfg.LSQSize)] = c + 1
	}

	// Deferred release: with REV, instructions (and stores) leave the
	// extension — and stores drain to the cache — only when their block
	// validates, which coincides with the block-end commit here (commit of
	// the terminator already waited for validationReady). Without REV the
	// release is simply the commit.
	p.uncommitted = append(p.uncommitted, pendingUnit{
		seq: i, isStore: k == isa.KindStore, storeIdx: storeIdx,
		lsqIdx: memSeq, isMem: isMem, memAddr: di.MemAddr,
	})
	if k == isa.KindStore {
		// Forwardable immediately; release filled in at block end.
		p.stores.put(di.MemAddr,
			pendingStore{seq: i, dataReady: done, release: storeNotReleased},
			p.fetchCycleCur)
	}
	if bbEnd {
		release := c
		for _, u := range p.uncommitted {
			if p.extRing != nil {
				p.extRing[u.seq%uint64(len(p.extRing))] = release + 1
			}
			if u.isStore {
				if p.storeRing != nil {
					p.storeRing[u.storeIdx%uint64(len(p.storeRing))] = release + 1
				}
				p.lsqRing[u.lsqIdx%uint64(p.Cfg.LSQSize)] = release + 1
				// Drain to the data cache at release; the write is off the
				// critical path but must touch tags for later accesses.
				p.Hier.Data(u.memAddr, release, true)
				p.stores.setRelease(u.memAddr, u.seq, release)
			}
		}
		p.uncommitted = p.uncommitted[:0]
		p.bbValid = false
	}

	p.Stats.Instrs++
	if c > p.Stats.Cycles {
		p.Stats.Cycles = c
	}
	return nil
}
