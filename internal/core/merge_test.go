package core

import (
	"math"
	"math/rand"
	"testing"
)

// Satellite: fuzz-style algebraic tests for the fleet merge operators.
// The parallel suite folds per-worker Stats and SCView values in
// whatever order workers finish setting them up, so the aggregation must
// be commutative and associative (and zero must be an identity) or the
// merged suite view would depend on scheduling. Inputs are generated as
// *consistent* views — Misses == PartialMisses + CompleteMisses and
// MissRate derived from the counters — which is the invariant every
// producer (engine teardown, SnapshotSC) maintains; Merge itself
// re-derives both, so the property also proves Merge preserves the
// invariant.

// randStats draws an arbitrary engine Stats value.
func randStats(rng *rand.Rand) Stats {
	u := func() uint64 { return uint64(rng.Int63n(1 << 40)) }
	return Stats{
		ValidatedBlocks: u(),
		SkippedDisabled: u(),
		RAMLookups:      u(),
		RecordsTouched:  u(),
		SAGPenalties:    u(),
		MemoHits:        u(),
		MemoMisses:      u(),
	}
}

// randSCView draws a consistent SC view: derived fields computed from
// the counters exactly as the simulator does.
func randSCView(rng *rand.Rand) SCView {
	v := SCView{
		Hits:           uint64(rng.Int63n(1 << 40)),
		PartialMisses:  uint64(rng.Int63n(1 << 30)),
		CompleteMisses: uint64(rng.Int63n(1 << 30)),
	}
	if rng.Intn(8) == 0 { // sometimes a cold cache: no probes at all
		return SCView{}
	}
	v.Misses = v.PartialMisses + v.CompleteMisses
	v.Probes = v.Hits + v.Misses
	if v.Probes > 0 {
		v.MissRate = float64(v.Misses) / float64(v.Probes)
	}
	return v
}

// mergedStats returns a.Merge(b) without mutating the inputs.
func mergedStats(a, b Stats) Stats { a.Merge(b); return a }

// mergedSC returns a.Merge(b) without mutating the inputs.
func mergedSC(a, b SCView) SCView { a.Merge(b); return a }

// scEqual compares SC views with exact counters and a float tolerance on
// the derived rate (association order may differ in the last ulp).
func scEqual(a, b SCView) bool {
	return a.Probes == b.Probes && a.Hits == b.Hits &&
		a.PartialMisses == b.PartialMisses && a.CompleteMisses == b.CompleteMisses &&
		a.Misses == b.Misses && math.Abs(a.MissRate-b.MissRate) < 1e-12
}

func TestStatsMergeAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 2000; trial++ {
		a, b, c := randStats(rng), randStats(rng), randStats(rng)
		if ab, ba := mergedStats(a, b), mergedStats(b, a); ab != ba {
			t.Fatalf("trial %d: Stats.Merge not commutative:\na+b %+v\nb+a %+v", trial, ab, ba)
		}
		left := mergedStats(mergedStats(a, b), c)
		right := mergedStats(a, mergedStats(b, c))
		if left != right {
			t.Fatalf("trial %d: Stats.Merge not associative:\n(a+b)+c %+v\na+(b+c) %+v", trial, left, right)
		}
		if withZero := mergedStats(a, Stats{}); withZero != a {
			t.Fatalf("trial %d: zero Stats not a merge identity: %+v != %+v", trial, withZero, a)
		}
	}
}

func TestSCViewMergeAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(0xcafe))
	for trial := 0; trial < 2000; trial++ {
		a, b, c := randSCView(rng), randSCView(rng), randSCView(rng)
		if ab, ba := mergedSC(a, b), mergedSC(b, a); !scEqual(ab, ba) {
			t.Fatalf("trial %d: SCView.Merge not commutative:\na+b %+v\nb+a %+v", trial, ab, ba)
		}
		left := mergedSC(mergedSC(a, b), c)
		right := mergedSC(a, mergedSC(b, c))
		if !scEqual(left, right) {
			t.Fatalf("trial %d: SCView.Merge not associative:\n(a+b)+c %+v\na+(b+c) %+v", trial, left, right)
		}
		// Merging with an empty view must preserve a (and re-derive the
		// invariant, so the result is exactly consistent).
		if withZero := mergedSC(a, SCView{}); !scEqual(withZero, a) {
			t.Fatalf("trial %d: empty SCView not a merge identity: %+v != %+v", trial, withZero, a)
		}
		// Invariant preservation: derived fields match the counters.
		m := mergedSC(a, b)
		if m.Misses != m.PartialMisses+m.CompleteMisses {
			t.Fatalf("trial %d: merged Misses %d != partial %d + complete %d",
				trial, m.Misses, m.PartialMisses, m.CompleteMisses)
		}
		if m.Probes > 0 {
			if want := float64(m.Misses) / float64(m.Probes); math.Abs(m.MissRate-want) > 1e-12 {
				t.Fatalf("trial %d: merged MissRate %g, want %g", trial, m.MissRate, want)
			}
		}
	}
}

// FuzzStatsMerge lets the fuzzer hunt for counter combinations that
// break commutativity or the zero identity (go test -fuzz=FuzzStatsMerge).
func FuzzStatsMerge(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), uint64(6), uint64(7),
		uint64(7), uint64(6), uint64(5), uint64(4), uint64(3), uint64(2), uint64(1))
	f.Fuzz(func(t *testing.T,
		a1, a2, a3, a4, a5, a6, a7, b1, b2, b3, b4, b5, b6, b7 uint64) {
		a := Stats{a1, a2, a3, a4, a5, a6, a7}
		b := Stats{b1, b2, b3, b4, b5, b6, b7}
		if ab, ba := mergedStats(a, b), mergedStats(b, a); ab != ba {
			t.Fatalf("not commutative: %+v vs %+v", ab, ba)
		}
		if withZero := mergedStats(a, Stats{}); withZero != a {
			t.Fatalf("zero not identity: %+v != %+v", withZero, a)
		}
	})
}
