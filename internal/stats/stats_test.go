package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if got := Mean(xs); got != 7.0/3 {
		t.Errorf("Mean = %v", got)
	}
	if got := HarmonicMean(xs); math.Abs(got-12.0/7) > 1e-12 {
		t.Errorf("HarmonicMean = %v", got)
	}
	if got := GeoMean(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
}

func TestMeansEmptyAndInvalid(t *testing.T) {
	if Mean(nil) != 0 || HarmonicMean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 || GeoMean([]float64{-1, 2}) != 0 {
		t.Error("non-positive inputs should give 0")
	}
}

// TestGeoMeanExtremeRange regresses the log-space accumulation: 1e4
// values near 1e+150 (and near 1e-150) would overflow (underflow) a
// running float64 product after two inputs, yet the geometric mean of
// the sample is a perfectly representable number.
func TestGeoMeanExtremeRange(t *testing.T) {
	const n = 10_000
	big := make([]float64, n)
	small := make([]float64, n)
	mixed := make([]float64, n)
	for i := range big {
		// Alternate slightly around the magnitude so the input is not a
		// single repeated constant.
		jitter := 1.0 + float64(i%7)/100
		big[i] = 1e150 * jitter
		small[i] = 1e-150 * jitter
		if i%2 == 0 {
			mixed[i] = 1e150 * jitter
		} else {
			mixed[i] = 1e-150 / jitter
		}
	}
	if g := GeoMean(big); math.IsInf(g, 0) || math.IsNaN(g) || g < 1e150 || g > 1.1e150 {
		t.Errorf("GeoMean(1e4 values ~1e+150) = %v, want finite ~1.03e150", g)
	}
	if g := GeoMean(small); g == 0 || math.IsNaN(g) || g < 1e-151 || g > 1.1e-150 {
		t.Errorf("GeoMean(1e4 values ~1e-150) = %v, want finite ~1.03e-150", g)
	}
	// Big and small magnitudes cancel: the mean must land near 1.
	if g := GeoMean(mixed); math.IsInf(g, 0) || math.IsNaN(g) || g < 0.5 || g > 2 {
		t.Errorf("GeoMean(mixed 1e±150) = %v, want ~1", g)
	}
	// Sanity: log-space result agrees with the naive product where the
	// product is representable.
	xs := []float64{1, 2, 4, 8}
	if g := GeoMean(xs); math.Abs(g-math.Sqrt(math.Sqrt(64))) > 1e-12 {
		t.Errorf("GeoMean(%v) = %v", xs, g)
	}
}

func TestMeanInequalityProperty(t *testing.T) {
	// HM <= GM <= AM for positive values.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%100) + 1
		}
		hm, gm, am := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return hm <= gm+1e-9 && gm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"bench", "ipc"},
	}
	tbl.AddRow("gcc", 1.234567)
	tbl.AddRow("averylongname", "x")
	tbl.AddNote("hello %d", 42)
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1.235") {
		t.Error("float not formatted")
	}
	if !strings.Contains(out, "note: hello 42") {
		t.Error("missing note")
	}
	// Alignment: the header and the long row should pad to the same width.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %q", out)
	}
	if !strings.Contains(lines[1], "bench") {
		t.Errorf("header line = %q", lines[1])
	}
}

func TestFormatters(t *testing.T) {
	if Pct(1.876) != "1.88%" {
		t.Errorf("Pct = %q", Pct(1.876))
	}
	if F3(2.5) != "2.500" {
		t.Errorf("F3 = %q", F3(2.5))
	}
	if KB(2048) != "2.0KB" {
		t.Errorf("KB = %q", KB(2048))
	}
}
