// Package asm is a programmatic assembler for the rev ISA.
//
// It is used by the synthetic workload generator, the attack injectors, and
// the examples to build executable modules: functions with local labels,
// forward references, data symbols with loader relocations, and jump tables
// for computed control flow. The output is a prog.Module whose code bytes
// are final except for data-address relocations, which the trusted loader
// patches (mirroring a conventional static linker).
package asm

import (
	"fmt"

	"rev/internal/isa"
	"rev/internal/prog"
)

// Builder accumulates instructions and emits a prog.Module.
type Builder struct {
	name     string
	instrs   []isa.Instr
	labels   map[string]int // label -> instruction index
	fixups   []fixup
	symbols  []prog.Symbol
	data     []byte
	dataSyms []prog.Symbol
	relocs   []prog.Reloc
	entry    string
	err      error
	curFunc  string
}

type fixup struct {
	instr int    // index of the instruction to patch
	label string // target label
}

// New returns a Builder for a module with the given name.
func New(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm(%s): %s", b.name, fmt.Sprintf(format, args...))
	}
}

// pc returns the code offset of the next instruction.
func (b *Builder) pc() uint64 { return uint64(len(b.instrs)) * isa.WordSize }

// Func starts a new function: defines a global label and an exported
// symbol. Local labels declared afterwards are scoped to this function.
func (b *Builder) Func(name string) {
	b.curFunc = name
	b.defineLabel(name)
	b.symbols = append(b.symbols, prog.Symbol{Name: name, Addr: b.pc()})
}

// Entry marks a previously or subsequently defined function as the entry
// point of the module.
func (b *Builder) Entry(fn string) { b.entry = fn }

// Label defines a function-local label at the current position.
func (b *Builder) Label(name string) { b.defineLabel(b.local(name)) }

func (b *Builder) local(name string) string { return b.curFunc + "." + name }

func (b *Builder) defineLabel(full string) {
	if _, dup := b.labels[full]; dup {
		b.fail("duplicate label %q", full)
		return
	}
	b.labels[full] = len(b.instrs)
}

func (b *Builder) emit(in isa.Instr) int {
	b.instrs = append(b.instrs, in)
	return len(b.instrs) - 1
}

func (b *Builder) emitFixup(in isa.Instr, label string) {
	idx := b.emit(in)
	b.fixups = append(b.fixups, fixup{instr: idx, label: label})
}

// Op3 emits a register-register ALU/FPU operation rd = rs1 op rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate operation rd = rs1 op imm.
func (b *Builder) OpI(op isa.Op, rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instr{Op: isa.NOP}) }

// LoadImm loads a 64-bit constant into rd using at most two instructions.
// Values representable in 32 bits (sign-extended) use a single ADDI from
// the zero register; others use LUI (rd = hi<<32) followed by ORI, which
// zero-extends its immediate.
func (b *Builder) LoadImm(rd uint8, v int64) {
	if v == int64(int32(v)) {
		b.OpI(isa.ADDI, rd, isa.RegZero, int32(v))
		return
	}
	b.OpI(isa.LUI, rd, isa.RegZero, int32(v>>32))
	b.OpI(isa.ORI, rd, rd, int32(uint32(v)))
}

// Load emits rd = mem[rs1+imm].
func (b *Builder) Load(rd, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.LD, Rd: rd, Rs1: rs1, Imm: imm})
}

// Store emits mem[rs1+imm] = rs2.
func (b *Builder) Store(rs2, rs1 uint8, imm int32) {
	b.emit(isa.Instr{Op: isa.ST, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Br emits a conditional branch to a function-local label.
func (b *Builder) Br(op isa.Op, rs1, rs2 uint8, label string) {
	if isa.OpKind(op) != isa.KindCondBranch {
		b.fail("Br with non-branch opcode %v", op)
		return
	}
	b.emitFixup(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2}, b.local(label))
}

// Jmp emits an unconditional jump to a function-local label.
func (b *Builder) Jmp(label string) {
	b.emitFixup(isa.Instr{Op: isa.JMP}, b.local(label))
}

// Call emits a direct call to a function (global label).
func (b *Builder) Call(fn string) {
	b.emitFixup(isa.Instr{Op: isa.CALL}, fn)
}

// Ret emits a return.
func (b *Builder) Ret() { b.emit(isa.Instr{Op: isa.RET}) }

// JmpReg emits a computed jump through a register.
func (b *Builder) JmpReg(rs1 uint8) { b.emit(isa.Instr{Op: isa.JR, Rs1: rs1}) }

// CallReg emits a computed call through a register.
func (b *Builder) CallReg(rs1 uint8) { b.emit(isa.Instr{Op: isa.CALLR, Rs1: rs1}) }

// Sys emits a system call.
func (b *Builder) Sys(service int32, rs1 uint8) {
	b.emit(isa.Instr{Op: isa.SYS, Rs1: rs1, Imm: service})
}

// Out emits an observable-output instruction for rs1.
func (b *Builder) Out(rs1 uint8) { b.emit(isa.Instr{Op: isa.OUT, Rs1: rs1}) }

// Halt stops the machine.
func (b *Builder) Halt() { b.emit(isa.Instr{Op: isa.HALT}) }

// Data appends bytes to the module's data segment under a symbol name and
// returns the symbol's offset within the segment.
func (b *Builder) Data(name string, bytes []byte) uint64 {
	off := uint64(len(b.data))
	b.dataSyms = append(b.dataSyms, prog.Symbol{Name: name, Addr: off})
	b.data = append(b.data, bytes...)
	return off
}

// DataWords appends 64-bit words to the data segment under a symbol name.
func (b *Builder) DataWords(name string, words []uint64) uint64 {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> (8 * j))
		}
	}
	return b.Data(name, buf)
}

// LoadDataAddr emits an instruction loading the run-time virtual address of
// a data symbol (plus offset) into rd. The loader patches the immediate.
func (b *Builder) LoadDataAddr(rd uint8, sym string, off int64) {
	idx := b.emit(isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: isa.RegZero})
	b.relocs = append(b.relocs, prog.Reloc{
		InstrOff: uint64(idx) * isa.WordSize,
		Sym:      sym,
		Add:      off,
	})
}

// CodeAddrFixup emits an instruction that will load the final virtual
// address of a function entry into rd. Because code addresses are known
// only after the loader assigns the module base, the address is expressed
// as base-relative at assembly time and finalized by Assemble given that
// module bases start at prog.CodeBase for the first module. For library
// modules the caller should use jump-vector data initialized at link time
// instead. The common case in this codebase is the first module, so
// Assemble resolves these against prog.CodeBase.
func (b *Builder) CodeAddrFixup(rd uint8, fn string) {
	b.emitFixup(isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: isa.RegZero, Imm: fixupAbsolute}, fn)
}

// fixupAbsolute marks a fixup that wants the absolute address of the label
// (assuming the module is loaded at prog.CodeBase) rather than a
// PC-relative displacement.
const fixupAbsolute = -0x7eadbeef

// FuncOffset returns the code offset of a defined function, for building
// jump tables. It must be called after the function has been defined.
func (b *Builder) FuncOffset(fn string) (uint64, bool) {
	idx, ok := b.labels[fn]
	if !ok {
		return 0, false
	}
	return uint64(idx) * isa.WordSize, true
}

// LabelOffset returns the code offset of a function-local label, for
// building jump tables over intra-function case blocks. It must be called
// after the label has been defined.
func (b *Builder) LabelOffset(fn, label string) (uint64, bool) {
	idx, ok := b.labels[fn+"."+label]
	if !ok {
		return 0, false
	}
	return uint64(idx) * isa.WordSize, true
}

// Assemble resolves all fixups and returns the finished module.
func (b *Builder) Assemble() (*prog.Module, error) {
	if b.err != nil {
		return nil, b.err
	}
	code := make([]byte, len(b.instrs)*isa.WordSize)
	for i, in := range b.instrs {
		in.EncodeTo(code[i*isa.WordSize:])
	}
	for _, f := range b.fixups {
		tgt, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm(%s): undefined label %q", b.name, f.label)
		}
		in := b.instrs[f.instr]
		if in.Imm == fixupAbsolute && in.Op == isa.ADDI {
			abs := int64(prog.CodeBase) + int64(tgt)*isa.WordSize
			if abs != int64(int32(abs)) {
				return nil, fmt.Errorf("asm(%s): absolute address of %q does not fit in imm32", b.name, f.label)
			}
			in.Imm = int32(abs)
		} else {
			disp := int64(tgt-f.instr) * isa.WordSize
			if disp != int64(int32(disp)) {
				return nil, fmt.Errorf("asm(%s): displacement to %q too large", b.name, f.label)
			}
			in.Imm = int32(disp)
		}
		in.EncodeTo(code[f.instr*isa.WordSize:])
	}
	var entry uint64
	if b.entry != "" {
		idx, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("asm(%s): undefined entry %q", b.name, b.entry)
		}
		entry = uint64(idx) * isa.WordSize
	}
	return &prog.Module{
		Name:     b.name,
		Code:     code,
		Entry:    entry,
		Symbols:  b.symbols,
		Data:     b.data,
		DataSyms: b.dataSyms,
		Relocs:   b.relocs,
	}, nil
}

// MustAssemble is Assemble that panics on error, for tests and generators
// whose input is known-valid by construction.
func (b *Builder) MustAssemble() *prog.Module {
	m, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return m
}
