package sigcache

import (
	"testing"

	"rev/internal/chash"
)

// TestPartialMissBecomesCompleteMiss walks one block through the full SC
// state ladder: complete miss (cold) → fill → hit → partial miss (needed
// edge not resident) → refresh → hit → eviction → complete miss again.
// This is the transition sequence behind Figure 10's partial/complete
// split, and it pins that an eviction demotes a previously
// partially-resident block all the way back to a complete miss.
func TestPartialMissBecomesCompleteMiss(t *testing.T) {
	c := smallSC() // 2 sets, 2-way
	r := rec(0x1000, 7,
		[]uint64{0x2000, 0x3000, 0x4000}, // 3 legal targets > MaxTargets=2
		nil)

	// Cold: complete miss.
	if got := c.Probe(0x1000, 7, Need{CheckTarget: true, Target: 0x2000}); got != CompleteMiss {
		t.Fatalf("cold probe = %v, want complete-miss", got)
	}
	c.Fill(r, Need{CheckTarget: true, Target: 0x2000})

	// Resident with 0x2000 MRU: hit.
	if got := c.Probe(0x1000, 7, Need{CheckTarget: true, Target: 0x2000}); got != Hit {
		t.Fatalf("warm probe = %v, want hit", got)
	}

	// 0x4000 is legal but was truncated off the MRU list: partial miss —
	// the entry exists, so the block's hash needs no re-validation, only
	// the edge must be re-fetched.
	if got := c.Probe(0x1000, 7, Need{CheckTarget: true, Target: 0x4000}); got != PartialMiss {
		t.Fatalf("truncated-edge probe = %v, want partial-miss", got)
	}
	if c.Stats.PartialMisses != 1 || c.Stats.CompleteMisses != 1 {
		t.Fatalf("stats after ladder = %+v", c.Stats)
	}

	// The miss-walk refreshes the entry; now 0x4000 is MRU-first.
	c.Fill(r, Need{CheckTarget: true, Target: 0x4000})
	if got := c.Probe(0x1000, 7, Need{CheckTarget: true, Target: 0x4000}); got != Hit {
		t.Fatalf("refreshed probe = %v, want hit", got)
	}

	// Evict the entry by filling both ways of its set with other blocks
	// (setBase uses end>>3, so ends 8 sets apart alias to the same set).
	setStride := uint64(8 * c.sets)
	c.Fill(rec(0x1000+setStride, 8, []uint64{1}, nil), Need{})
	c.Fill(rec(0x1000+2*setStride, 9, []uint64{2}, nil), Need{})

	// Demoted: not even a partial miss survives an eviction.
	if got := c.Probe(0x1000, 7, Need{CheckTarget: true, Target: 0x4000}); got != CompleteMiss {
		t.Fatalf("post-eviction probe = %v, want complete-miss", got)
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("eviction path never taken")
	}
}

// TestFillAllocFreeIncludingEvictions pins the pooled-backing contract:
// with every entry's MRU lists carved from the construction-time slabs,
// the whole Fill path — first-touch installs, steady-state refreshes, and
// LRU evictions that recycle a victim entry — allocates nothing at all.
func TestFillAllocFreeIncludingEvictions(t *testing.T) {
	c := smallSC()
	setStride := uint64(8 * c.sets)
	recs := []struct {
		end  uint64
		hash chash.Sig
	}{
		// 3 blocks aliasing into one 2-way set: every third fill evicts.
		{0x1000, 7}, {0x1000 + setStride, 8}, {0x1000 + 2*setStride, 9},
	}
	targets := []uint64{0x2000, 0x3000, 0x4000}
	i := 0
	if a := testing.AllocsPerRun(300, func() {
		rc := recs[i%len(recs)]
		n := Need{CheckTarget: true, Target: targets[i%len(targets)]}
		i++
		c.Fill(rec(rc.end, rc.hash, targets, []uint64{0x5000}), n)
	}); a != 0 {
		t.Errorf("Fill (incl. evictions) allocates %.2f times per call; want 0", a)
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("eviction path never exercised")
	}

	// Flush must recycle, not discard, the pooled backing.
	if a := testing.AllocsPerRun(10, func() { c.Flush() }); a != 0 {
		t.Errorf("Flush allocates %.2f times per call; want 0", a)
	}
	c.Fill(rec(0x1000, 7, targets, nil), Need{})
	if got := c.Probe(0x1000, 7, Need{}); got != Hit {
		t.Fatalf("post-flush refill probe = %v, want hit", got)
	}
}
