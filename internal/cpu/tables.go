package cpu

// Hot-path hash structures for the timing model. Profiling showed the two
// Go maps on Pipeline.Next — the store-to-load forwarding table and the
// unique-branch set — dominating the non-hashing simulation time (map
// assignments allocate and rehash behind our back on every committed store
// and branch). Both are replaced with open-addressing tables tuned to the
// access pattern:
//
//   - storeTable: linear-probe map keyed by store effective address. It is
//     kept bounded by construction: a store-queue entry whose release cycle
//     is already in the past can never win a forwarding comparison again
//     (every future load's address-generation cycle is at least the current
//     fetch cycle), so growth first sweeps dead entries and only doubles
//     when the live set genuinely outgrows the table. Entries still awaiting
//     their block's validation (release == ^uint64(0)) are never evicted.
//
//   - addrSet: linear-probe set of instruction addresses (Figure 9's
//     unique-branch metric). Insert-only; doubles at 3/4 load.
//
// Both use the same splitmix64-style finalizer as the core signature memo.

type pendingStore struct {
	seq       uint64 // producing store's sequence number
	dataReady uint64 // cycle the store value is forwardable
	release   uint64 // cycle the store leaves the (extended) store queue
}

// storeNotReleased marks a store whose block has not validated yet; it must
// not be evicted and always forwards.
const storeNotReleased = ^uint64(0)

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

type storeSlot struct {
	addr uint64
	live bool
	ps   pendingStore
}

// storeTable maps a store's effective address to its forwarding state.
// Deletion happens only wholesale during rehash (sweep), so linear-probe
// chains stay intact; in-place value updates are always safe.
type storeTable struct {
	slots []storeSlot
	mask  uint64
	n     int // live slots
	// spare is the previous backing array, kept so steady-state sweeps
	// (rehash at unchanged size) ping-pong between two buffers instead of
	// allocating — the run-arena zero-alloc path depends on this.
	spare []storeSlot
}

const storeTableInitial = 64

func newStoreTable() *storeTable {
	return &storeTable{slots: make([]storeSlot, storeTableInitial), mask: storeTableInitial - 1}
}

// get returns the pending store recorded for addr.
func (t *storeTable) get(addr uint64) (pendingStore, bool) {
	for i := mix64(addr) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.live {
			return pendingStore{}, false
		}
		if s.addr == addr {
			return s.ps, true
		}
	}
}

// put inserts or overwrites the entry for addr. now is the current fetch
// cycle, used as the dead-entry horizon if the table must grow.
func (t *storeTable) put(addr uint64, ps pendingStore, now uint64) {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.rehash(now)
	}
	for i := mix64(addr) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.live {
			*s = storeSlot{addr: addr, live: true, ps: ps}
			t.n++
			return
		}
		if s.addr == addr {
			s.ps = ps
			return
		}
	}
}

// setRelease records the store-queue release cycle of the store identified
// by (addr, seq), if its entry has not been overwritten by a younger store
// to the same address.
func (t *storeTable) setRelease(addr, seq, release uint64) {
	for i := mix64(addr) & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.live {
			return
		}
		if s.addr == addr {
			if s.ps.seq == seq {
				s.ps.release = release
			}
			return
		}
	}
}

// reset clears the table in place, keeping its (possibly grown) backing.
// Table capacity is invisible to forwarding decisions — released entries
// whose cycle has passed can never win a comparison — so a reset table
// replays a run byte-identically.
func (t *storeTable) reset() {
	for i := range t.slots {
		t.slots[i] = storeSlot{}
	}
	t.n = 0
}

// rehash rebuilds the table keeping only entries that can still influence a
// future forwarding decision: those not yet released, or released at a
// cycle still ahead of the current fetch cycle. The table doubles only if
// the surviving live set itself exceeds the 3/4 load target — so its size
// is bounded by the store-release window, not the run length.
func (t *storeTable) rehash(now uint64) {
	live := 0
	for i := range t.slots {
		s := &t.slots[i]
		if s.live && (s.ps.release == storeNotReleased || s.ps.release > now) {
			live++
		}
	}
	size := len(t.slots)
	for 4*(live+1) > 3*size {
		size *= 2
	}
	old := t.slots
	if len(t.spare) == size {
		t.slots = t.spare
		for i := range t.slots {
			t.slots[i] = storeSlot{}
		}
	} else {
		t.slots = make([]storeSlot, size)
	}
	t.spare = old
	t.mask = uint64(size - 1)
	t.n = 0
	for i := range old {
		s := &old[i]
		if s.live && (s.ps.release == storeNotReleased || s.ps.release > now) {
			for j := mix64(s.addr) & t.mask; ; j = (j + 1) & t.mask {
				d := &t.slots[j]
				if !d.live {
					*d = *s
					t.n++
					break
				}
			}
		}
	}
}

// addrSet is an insert-only open-addressing set of instruction addresses.
type addrSet struct {
	slots []uint64 // 0 = empty (instruction addresses are never 0)
	mask  uint64
	n     int
	zero  bool // membership of address 0, kept out of the sentinel scheme
}

const addrSetInitial = 256

func newAddrSet() *addrSet {
	return &addrSet{slots: make([]uint64, addrSetInitial), mask: addrSetInitial - 1}
}

func (s *addrSet) add(addr uint64) {
	if addr == 0 {
		s.zero = true
		return
	}
	if 4*(s.n+1) > 3*len(s.slots) {
		old := s.slots
		s.slots = make([]uint64, 2*len(old))
		s.mask = uint64(len(s.slots) - 1)
		s.n = 0
		for _, a := range old {
			if a != 0 {
				s.insert(a)
			}
		}
	}
	s.insert(addr)
}

func (s *addrSet) insert(addr uint64) {
	for i := mix64(addr) & s.mask; ; i = (i + 1) & s.mask {
		if s.slots[i] == addr {
			return
		}
		if s.slots[i] == 0 {
			s.slots[i] = addr
			s.n++
			return
		}
	}
}

// reset clears the set in place, keeping its (possibly grown) backing.
func (s *addrSet) reset() {
	for i := range s.slots {
		s.slots[i] = 0
	}
	s.n = 0
	s.zero = false
}

func (s *addrSet) len() int {
	if s.zero {
		return s.n + 1
	}
	return s.n
}
