package core

import (
	"testing"

	"rev/internal/sigtable"
)

// Batch-boundary edge cases for the batched publish/retire pipeline
// (pipeline.go). The ring holds 256 slots and these programs retire
// thousands of blocks, so every sweep crosses ring wraparound mid-batch
// many times over; the batch sweep below additionally places batch
// boundaries at every alignment relative to the wrap point (batch sizes
// 1, 3, 8, 64 are mutually coprime-ish against the 256-slot ring).

// TestBatchIdentitySweep is the lanes×batch×format identity matrix: for
// every signature-table format, every lane count and every publish batch
// depth must reproduce the serial run byte-for-byte. Batch 1 degenerates
// to the unbatched protocol, 8 exercises partial flushes at halt (the
// tail block count is not a multiple of 8), 64 spans a quarter of the
// ring so claim-gating under a full ring fires.
func TestBatchIdentitySweep(t *testing.T) {
	for _, format := range []sigtable.Format{sigtable.Normal, sigtable.Aggressive, sigtable.CFIOnly} {
		rc := DefaultRunConfig()
		rc.MaxInstrs = 60_000
		rc.REV = revConfig(format, 8)
		prep, err := Prepare(builderOf(loopProgram), rc)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := prep.RunWithLanes(0)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Violation != nil || !serial.Halted {
			t.Fatalf("%v: serial reference run broken: vio=%v halted=%v",
				format, serial.Violation, serial.Halted)
		}
		for _, lanes := range []int{1, 2, 4} {
			for _, batch := range []int{1, 8, 64} {
				tag := format.String() + "/lanes=" + itoa(lanes) + "/batch=" + itoa(batch)
				piped, err := prep.RunInstance(InstanceOptions{Lanes: lanes, Batch: batch})
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				mustMatch(t, tag, serial, piped)
			}
		}
	}
}

// TestBatchSMCFenceParity puts the SMC epoch fence inside a batch: the
// code-version bump arrives while the producer holds unpublished claimed
// slots, so the fence must flush the partial batch before draining the
// ring — otherwise the drain deadlocks (lanes wait for records the
// producer is still holding) or the stale-epoch memo leaks across the
// fence. Batch 64 makes the partial-batch window as wide as possible;
// batch 1 pins the degenerate flush-every-record protocol.
func TestBatchSMCFenceParity(t *testing.T) {
	for _, withWindow := range []bool{true, false} {
		rc := DefaultRunConfig()
		rc.REV = revConfig(sigtable.Normal, 32)
		prep, err := Prepare(builderOf(smcWindowProgram(withWindow)), rc)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := prep.RunWithLanes(0)
		if err != nil {
			t.Fatal(err)
		}
		if withWindow {
			if serial.Violation != nil {
				t.Fatalf("windowed serial run flagged: %v", serial.Violation)
			}
		} else if serial.Violation == nil || serial.Violation.Reason != ViolationHash {
			t.Fatalf("unwindowed serial run should hash-violate, got %v", serial.Violation)
		}
		tag := "smc-window"
		if !withWindow {
			tag = "smc-nowindow"
		}
		for _, lanes := range []int{1, 4} {
			for _, batch := range []int{1, 64} {
				piped, err := prep.RunInstance(InstanceOptions{Lanes: lanes, Batch: batch})
				if err != nil {
					t.Fatalf("%s lanes=%d batch=%d: %v", tag, lanes, batch, err)
				}
				mustMatch(t, tag+"/lanes="+itoa(lanes)+"/batch="+itoa(batch), serial, piped)
			}
		}
	}
}

// TestBatchViolationPlacement replays the attack suite across batch
// depths chosen so the violating block lands at different offsets inside
// a batch — first slot (batch 1: every block is both first and last),
// interior (batch 3: the injection point at block ≈500/loop-shape is not
// aligned), and deep inside a wide batch (64). The violation must abort
// the run with identical figures wherever the batch boundary falls, and
// the producer must account for the abandoned claimed slots of the
// partial batch on the stop path.
func TestBatchViolationPlacement(t *testing.T) {
	for _, sc := range attackScenarios() {
		runOnce := func(lanes, batch int) *Result {
			t.Helper()
			rc := DefaultRunConfig()
			rc.MaxInstrs = 60_000
			rc.REV = revConfig(sigtable.Normal, 8)
			rc.AttackHook = sc.newHook()
			prep, err := Prepare(builderOf(sc.gen), rc)
			if err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
			res, err := prep.RunInstance(InstanceOptions{Lanes: lanes, Batch: batch})
			if err != nil {
				t.Fatalf("%s lanes=%d batch=%d: %v", sc.name, lanes, batch, err)
			}
			return res
		}
		serial := runOnce(0, 0)
		if serial.Violation == nil {
			t.Fatalf("%s: serial reference missed the attack", sc.name)
		}
		for _, lanes := range []int{1, 4} {
			for _, batch := range []int{1, 3, 64} {
				tag := sc.name + "/lanes=" + itoa(lanes) + "/batch=" + itoa(batch)
				mustMatch(t, tag, serial, runOnce(lanes, batch))
			}
		}
	}
}

// TestBatchResolution pins the batch-depth resolution rule: zero or
// negative requests fall back to the default, oversized requests clamp
// to half the ring so the producer can never claim the whole ring while
// the consumer starves.
func TestBatchResolution(t *testing.T) {
	if got := resolveBatch(0); got != DefaultPublishBatch {
		t.Errorf("resolveBatch(0) = %d, want DefaultPublishBatch=%d", got, DefaultPublishBatch)
	}
	if got := resolveBatch(-5); got != DefaultPublishBatch {
		t.Errorf("resolveBatch(-5) = %d, want %d", got, DefaultPublishBatch)
	}
	if got := resolveBatch(3); got != 3 {
		t.Errorf("resolveBatch(3) = %d, want 3", got)
	}
	if got, max := resolveBatch(1<<20), pipeRingSlots/2; got != max {
		t.Errorf("resolveBatch(huge) = %d, want clamp at %d", got, max)
	}
}
