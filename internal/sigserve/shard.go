package sigserve

import (
	"fmt"
	"sync"
	"time"

	"rev/internal/sigtable"
)

// Server-side sharding (docs/DEPLOYMENT.md).
//
// A Server becomes one shard of a control plane when SetRing hands it
// the ring, its own identity, and the tenant universe. From then on it
// refuses connections for tenants it does not own with CodeWrongShard
// — naming the true owner in the error's hint fields so a misrouted
// client corrects itself in one round trip — and answers MsgTopology
// with the full membership so a client bootstrapped with a single
// address discovers the rest of the plane. SetAdmission arms the
// per-shard token bucket: requests beyond the sustained rate are
// answered CodeOverloaded with a retry-after hint instead of queueing,
// keeping shard latency bounded under overload (the revload sweep
// measures exactly this curve).

// ringState is a shard's installed topology: the ring, this shard's
// identity, and the bounded-load placement over the configured tenant
// universe. Swapped atomically so membership changes never block the
// serve path.
type ringState struct {
	ring   *Ring
	selfID string
	// owners is Place() over the configured tenants: the authoritative
	// replica set per namespace (may differ from the pure walk for
	// spilled tenants).
	owners map[string][]RingNode
}

// owned reports whether this shard is in the tenant's replica set, and
// the preferred owner to name in a redirect when it is not.
func (rs *ringState) owned(tenant string) (bool, RingNode) {
	set, ok := rs.owners[tenant]
	if !ok {
		// Tenant outside the configured universe: fall back to the pure
		// walk so the redirect still names a deterministic owner.
		set = rs.ring.Replicas(tenant)
	}
	for _, n := range set {
		if n.ID == rs.selfID {
			return true, n
		}
	}
	if len(set) == 0 {
		return false, RingNode{}
	}
	return false, set[0]
}

// SetRing installs the shard's view of the control-plane topology: the
// ring, this server's node ID, and the tenant universe the plane
// serves. Placement (bounded-load, see Ring.Place) is computed here
// once; every shard configured with the same inputs computes the same
// placement. Connections for tenants this shard does not own are
// refused with CodeWrongShard naming the true owner. A nil ring
// reverts the server to unsharded, own-everything behavior.
func (s *Server) SetRing(ring *Ring, selfID string, tenants []string) error {
	if ring == nil {
		s.ring.Store(nil)
		return nil
	}
	found := false
	for _, n := range ring.Nodes() {
		if n.ID == selfID {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("sigserve: self id %q is not in the ring", selfID)
	}
	s.ring.Store(&ringState{
		ring:   ring,
		selfID: selfID,
		owners: ring.Place(tenants),
	})
	if s.tel != nil && s.tel.ringEpoch != nil {
		s.tel.ringEpoch.Set(int64(ring.Epoch()))
	}
	return nil
}

// RingEpoch returns the installed topology generation (0 when
// unsharded).
func (s *Server) RingEpoch() uint64 {
	if rs := s.ring.Load(); rs != nil {
		return rs.ring.Epoch()
	}
	return 0
}

// Owns reports whether this server serves the tenant under the
// installed ring (always true when unsharded).
func (s *Server) Owns(tenant string) bool {
	rs := s.ring.Load()
	if rs == nil {
		return true
	}
	ok, _ := rs.owned(tenant)
	return ok
}

// tokenBucket is the shard's admission gate: a classic token bucket
// refilled at rate tokens/second with capacity burst. take either
// admits the request or reports how long until a token will exist.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// take admits one request (true) or returns the duration after which
// retrying can succeed.
func (b *tokenBucket) take() (bool, time.Duration) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	} else {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// SetAdmission arms per-shard admission control: post-handshake
// requests beyond rate requests/second (with a burst allowance) are
// answered CodeOverloaded carrying a retry-after hint, instead of
// queueing behind an overloaded shard. rate <= 0 disables. Safe to
// call while serving.
func (s *Server) SetAdmission(rate int, burst int) {
	if rate <= 0 {
		s.admit.Store(nil)
		return
	}
	if burst < 1 {
		burst = rate
	}
	s.admit.Store(&tokenBucket{rate: float64(rate), burst: float64(burst)})
}

// buildDelta computes the record-index patch list between two wire
// images of the same module (nil when no usable delta exists — format
// change, or more records changed than a patch list can carry).
// Removal needs no patches: the record count in the new table metadata
// tells the client to truncate.
func buildDelta(old, new *publishedTable) []deltaPatch {
	if old.table.Format != new.table.Format {
		return nil
	}
	recSize := sigtable.RecordSize
	if new.table.Format == sigtable.CFIOnly {
		recSize = sigtable.CFIRecordSize
	}
	if len(old.wire)%recSize != 0 || len(new.wire)%recSize != 0 {
		return nil
	}
	oldN, newN := len(old.wire)/recSize, len(new.wire)/recSize
	common := oldN
	if newN < common {
		common = newN
	}
	patches := []deltaPatch{}
	for i := 0; i < common; i++ {
		off := i * recSize
		if string(old.wire[off:off+recSize]) != string(new.wire[off:off+recSize]) {
			patches = append(patches, deltaPatch{Index: uint32(i), Rec: new.wire[off : off+recSize]})
		}
	}
	for i := common; i < newN; i++ {
		off := i * recSize
		patches = append(patches, deltaPatch{Index: uint32(i), Rec: new.wire[off : off+recSize]})
	}
	if len(patches) > maxListLen {
		return nil
	}
	return patches
}

// applyDelta rebuilds the new generation's wire image from a cached
// one plus a patch list: resize to the new record count (truncating
// removed records, zero-extending before appended ones land), overwrite
// each patched record, and verify the result hashes to the server's
// stated chain head. Any mismatch is an error; the caller falls back to
// a full fetch.
func applyDelta(old []byte, d snapshotDeltaData) ([]byte, error) {
	recSize := sigtable.RecordSize
	if d.Table.Format == sigtable.CFIOnly {
		recSize = sigtable.CFIRecordSize
	}
	// Records is an unvalidated wire u64: bound it by the same MaxPayload
	// ceiling the full-image path enforces before it can size a hostile
	// allocation (or overflow int on 32-bit).
	if d.Table.Records > uint64(MaxPayload/recSize) {
		return nil, fmt.Errorf("sigserve: delta names %d records of %d bytes, exceeding MaxPayload", d.Table.Records, recSize)
	}
	out := make([]byte, int(d.Table.Records)*recSize)
	copy(out, old)
	for _, p := range d.Patches {
		if len(p.Rec) != recSize {
			return nil, fmt.Errorf("sigserve: delta patch is %d bytes, records are %d", len(p.Rec), recSize)
		}
		off := int(p.Index) * recSize
		if off < 0 || off+recSize > len(out) {
			return nil, fmt.Errorf("sigserve: delta patch index %d outside %d records", p.Index, d.Table.Records)
		}
		copy(out[off:], p.Rec)
	}
	if snapHash(d.Table, out) != d.NewHash {
		return nil, fmt.Errorf("sigserve: delta chain mismatch: applied image does not hash to the server's chain head")
	}
	return out, nil
}

// handleSnapshotDelta answers MsgSnapshotDelta: a patch list when the
// client's stated generation matches the one this generation was
// diffed against (or is already current), a full image otherwise.
func (s *Server) handleSnapshotDelta(cs *connState, f Frame) bool {
	req, err := decodeSnapshotDeltaReq(f.Payload)
	if err != nil {
		return s.sendErr(cs, f.ReqID, CodeBadRequest, err.Error())
	}
	slot := cs.t.slot(req.Module)
	if slot == nil {
		return s.sendErr(cs, f.ReqID, CodeUnknownModule, req.Module)
	}
	pub := slot.Load()
	resp := snapshotDeltaData{Table: pub.table, Epoch: pub.epoch, NewHash: pub.hash}
	switch {
	case req.HaveEpoch == pub.epoch && req.HaveHash == pub.hash:
		// Already current: an empty patch list is the cheapest "no-op".
		resp.PrevHash = pub.hash
	case req.HaveEpoch == pub.prevEpoch && req.HaveHash == pub.prevHash && pub.patches != nil:
		resp.PrevHash = pub.prevHash
		resp.Patches = pub.patches
	default:
		// Unknown generation (client skipped a rotation, or chain
		// mismatch): fall back to the full image.
		resp.Full = 1
		resp.Recs = pub.wire
	}
	if s.tel != nil {
		if resp.Full != 0 {
			s.tel.deltaFulls.Inc()
		} else {
			s.tel.deltaHits.Inc()
		}
	}
	return s.reply(cs, f.ReqID, MsgSnapshotDeltaData, resp.encode())
}

// handleTopology answers MsgTopology with the installed ring membership
// (an empty, epoch-0 response when unsharded).
func (s *Server) handleTopology(cs *connState, f Frame) bool {
	var resp topologyData
	if rs := s.ring.Load(); rs != nil {
		cfg := rs.ring.Config()
		resp = topologyData{
			RingEpoch: rs.ring.Epoch(),
			Replicas:  uint8(cfg.Replicas),
			VNodes:    uint16(cfg.VNodes),
			Self:      rs.selfID,
			Nodes:     rs.ring.Nodes(),
		}
	}
	return s.reply(cs, f.ReqID, MsgTopologyData, resp.encode())
}

// sendErrMsg writes one MsgError with its version-4 hint fields (when
// the connection speaks them) and counts it by code.
func (s *Server) sendErrMsg(cs *connState, reqID uint64, m errorMsg) bool {
	if s.tel != nil && int(m.Code) > 0 && int(m.Code) < len(s.tel.errCodes) {
		s.tel.errCodes[m.Code].Inc()
	}
	return s.reply(cs, reqID, MsgError, m.encodeAt(cs.ver))
}
