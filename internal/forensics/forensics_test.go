package forensics

import (
	"strings"
	"testing"

	"rev/internal/isa"
	"rev/internal/prog"
)

func sampleMem() *prog.Memory {
	m := prog.NewMemory()
	code := []isa.Instr{
		{Op: isa.ADDI, Rd: 4, Imm: 0x666},
		{Op: isa.OUT, Rs1: 4},
		{Op: isa.RET},
	}
	for i, in := range code {
		var buf [isa.WordSize]byte
		in.EncodeTo(buf[:])
		m.WriteBytes(0x1000+uint64(i*isa.WordSize), buf[:])
	}
	return m
}

func TestCaptureSnapshotsBlock(t *testing.T) {
	mem := sampleMem()
	var l Log
	rec := l.Capture("hash-mismatch", 0x1000, 0x1010, 0x1010, mem)
	if len(rec.Code) != 24 {
		t.Fatalf("captured %d bytes", len(rec.Code))
	}
	dis := rec.Disassemble()
	if !strings.Contains(dis, "out r4") || !strings.Contains(dis, "ret") {
		t.Errorf("disassembly wrong:\n%s", dis)
	}
	if rec.Sig == 0 {
		t.Error("no signature computed")
	}
	if len(l.Records) != 1 || l.Records[0].Seq != 0 {
		t.Errorf("log bookkeeping wrong: %+v", l.Records)
	}
}

func TestBlacklistMatchesByPlacementAndBytes(t *testing.T) {
	mem := sampleMem()
	var l Log
	rec := l.Capture("hash-mismatch", 0x1000, 0x1010, 0, mem)
	bl := NewBlacklist()
	bl.AddRecord(rec)
	if bl.Len() != 1 {
		t.Errorf("len = %d", bl.Len())
	}
	if _, ok := bl.MatchPlaced(rec.Sig); !ok {
		t.Error("placed signature should match")
	}
	if _, ok := bl.MatchCode(rec.Code); !ok {
		t.Error("code bytes should match regardless of address")
	}
	// A different payload must not match.
	other := append([]byte(nil), rec.Code...)
	other[0] ^= 0xff
	if _, ok := bl.MatchCode(other); ok {
		t.Error("modified payload must not match")
	}
}

func TestAddLogIngestsAll(t *testing.T) {
	mem := sampleMem()
	var l Log
	l.Capture("a", 0x1000, 0x1008, 0, mem)
	l.Capture("b", 0x1008, 0x1010, 0, mem)
	bl := NewBlacklist()
	bl.AddLog(&l)
	if bl.Len() != 2 {
		t.Errorf("len = %d, want 2", bl.Len())
	}
}

func TestReportRendering(t *testing.T) {
	mem := sampleMem()
	var l Log
	l.Capture("illegal-return", 0x1000, 0x1010, 0xdead, mem)
	rep := l.Report()
	for _, want := range []string{"1 validation failure", "illegal-return", "0xdead", "out r4"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
