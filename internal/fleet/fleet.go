// Package fleet implements the parallel validation fleet: a bounded
// worker pool that shards independent simulation and validation jobs —
// benchmark runs, figure regeneration, multi-tenant validation — across
// GOMAXPROCS-bounded goroutines with deterministic, input-ordered
// result collection and per-worker throughput metrics.
//
// Design rules (see docs/CONCURRENCY.md for the full sharing contract):
//
//   - Jobs must be independent. Each job owns its engine, pipeline,
//     memory hierarchy and program instance; the only state a job may
//     share with its siblings is immutable (sigtable.Snapshot,
//     core.SharedTable, workload profiles) or internally synchronized
//     (the experiments suite's result cache).
//   - Results are collected by input index, never by completion order,
//     so a fleet of N workers produces byte-identical output to a
//     serial run over the same inputs.
//   - Errors are deterministic too: when several jobs fail, the error
//     of the lowest input index is returned. All jobs always run to
//     completion (they are short and side-effect-free), so partial
//     results remain usable by callers that want them.
//   - Work is handed out dynamically (an atomic cursor, not static
//     striping) so a slow job — gcc or gobmk in the evaluation suite —
//     does not idle the rest of the fleet.
//
// The instrumented Runner additionally records, per worker, the jobs
// executed, busy wall time, and validated-block throughput; cmd/revbench
// folds these into BENCH_parallel.json.
package fleet

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rev/internal/telemetry"
)

// Workers resolves a requested worker count: n <= 0 selects
// runtime.GOMAXPROCS(0), and the result never exceeds jobs (spawning
// more goroutines than jobs would only add scheduler noise).
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// JobMetric records one job's execution: which worker ran it, how long
// it took, how long it sat queued before dispatch, and how many basic
// blocks its simulation validated (zero when the runner has no block
// extractor).
type JobMetric struct {
	Index       int     `json:"index"`
	Worker      int     `json:"worker"`
	WallSeconds float64 `json:"wall_seconds"`
	// QueueWaitSeconds is the delay from fleet start to this job's
	// dispatch: how long the input sat behind earlier jobs. Near zero for
	// the first `workers` jobs, growing with queue depth after that.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	Blocks           uint64  `json:"blocks,omitempty"`
}

// WorkerMetric aggregates the jobs one worker executed. Busy and idle
// time reconcile with the fleet wall clock exactly:
// WallSeconds + IdleSeconds == Report.WallSeconds for every worker.
type WorkerMetric struct {
	Worker      int     `json:"worker"`
	Jobs        int     `json:"jobs"`
	WallSeconds float64 `json:"wall_seconds"`
	// IdleSeconds is the worker's share of the fleet wall clock not spent
	// inside Fn: dispatch overhead plus the tail wait after its last job
	// while slower siblings finish. Large values on all but one worker
	// indicate an unbalanced job mix (one gcc-sized straggler).
	IdleSeconds  float64 `json:"idle_seconds"`
	Blocks       uint64  `json:"blocks"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
}

// Report describes one fleet run: total wall time (start of dispatch to
// last worker done), per-job and per-worker breakdowns, and aggregate
// block throughput across the whole fleet.
type Report struct {
	Workers      int     `json:"workers"`
	Jobs         int     `json:"jobs"`
	WallSeconds  float64 `json:"wall_seconds"`
	Blocks       uint64  `json:"blocks"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	// Inline reports that the degenerate single-lane case was detected
	// (one worker, or GOMAXPROCS=1) and jobs ran on the caller goroutine
	// with no channel or goroutine machinery at all.
	Inline    bool           `json:"inline,omitempty"`
	PerJob    []JobMetric    `json:"per_job,omitempty"`
	PerWorker []WorkerMetric `json:"per_worker"`
}

// Runner is an instrumented worker pool over a fixed job type.
//
// Fn receives the worker id (0..Workers-1), the job's input index, and
// the item; it must not retain references to mutable state shared with
// other jobs. Blocks, when non-nil, extracts a validated-block count
// from each result for throughput accounting.
type Runner[T, R any] struct {
	// Workers bounds concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// Fn executes one job.
	Fn func(worker, index int, item T) (R, error)
	// Blocks optionally extracts the job's validated-block count.
	Blocks func(R) uint64
	// Trace, when non-nil, records one trace track per worker with a span
	// per job (span arg = input index) into the recorder. Each worker
	// writes only its own track, so one recorder may be shared by the
	// whole fleet (and by the runs inside it, via per-run track labels).
	Trace *telemetry.Recorder
}

// fleetTracks bundles the per-worker trace tracks resolved at Run setup.
type fleetTracks struct {
	tracks []*telemetry.Track
	nJob   telemetry.NameID
	nIndex telemetry.NameID
}

func newFleetTracks(rec *telemetry.Recorder, workers int) *fleetTracks {
	if rec == nil {
		return nil
	}
	ft := &fleetTracks{
		nJob:   rec.Name("job"),
		nIndex: rec.Name("index"),
	}
	for w := 0; w < workers; w++ {
		ft.tracks = append(ft.tracks, rec.Track("worker"+strconv.Itoa(w)))
	}
	return ft
}

// Run executes every item and returns the results in input order plus
// the fleet report. When jobs fail, the error of the lowest input index
// is returned alongside the (complete) result slice.
func (r *Runner[T, R]) Run(items []T) ([]R, *Report, error) {
	n := len(items)
	workers := Workers(r.Workers, n)
	// Degenerate fleet: with one worker — or one CPU, where extra
	// goroutines can only time-slice — the pool is pure overhead. Run the
	// jobs inline on the caller goroutine: no goroutines, no atomic
	// cursor, no WaitGroup, and byte-identical results (collection is
	// input-ordered either way). BENCH_parallel.json on a 1-CPU host
	// recorded speedup < 1.0 before this path existed.
	if workers == 1 || runtime.GOMAXPROCS(0) == 1 {
		return r.runInline(items)
	}
	results := make([]R, n)
	errs := make([]error, n)
	jobs := make([]JobMetric, n)
	perWorker := make([]WorkerMetric, workers)

	ft := newFleetTracks(r.Trace, workers)
	start := time.Now()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wm := &perWorker[worker]
			wm.Worker = worker
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				if ft != nil {
					ft.tracks[worker].Begin(ft.nJob)
				}
				res, err := r.Fn(worker, i, items[i])
				if ft != nil {
					ft.tracks[worker].EndArg(ft.nIndex, uint64(i))
				}
				wall := time.Since(t0).Seconds()
				results[i] = res
				errs[i] = err
				var blocks uint64
				if err == nil && r.Blocks != nil {
					blocks = r.Blocks(res)
				}
				jobs[i] = JobMetric{
					Index: i, Worker: worker, WallSeconds: wall,
					QueueWaitSeconds: t0.Sub(start).Seconds(), Blocks: blocks,
				}
				wm.Jobs++
				wm.WallSeconds += wall
				wm.Blocks += blocks
			}
		}(w)
	}
	wg.Wait()

	rep := &Report{
		Workers:     workers,
		Jobs:        n,
		WallSeconds: time.Since(start).Seconds(),
		PerJob:      jobs,
		PerWorker:   perWorker,
	}
	for i := range perWorker {
		wm := &perWorker[i]
		// Idle reconciles against the fleet wall clock: busy + idle ==
		// rep.WallSeconds exactly, for every worker (the spans-vs-wall
		// accounting check of docs/OBSERVABILITY.md).
		if wm.IdleSeconds = rep.WallSeconds - wm.WallSeconds; wm.IdleSeconds < 0 {
			wm.IdleSeconds = 0
		}
		if wm.WallSeconds > 0 {
			wm.BlocksPerSec = float64(wm.Blocks) / wm.WallSeconds
		}
		rep.Blocks += wm.Blocks
	}
	if rep.WallSeconds > 0 {
		rep.BlocksPerSec = float64(rep.Blocks) / rep.WallSeconds
	}
	for _, err := range errs {
		if err != nil {
			return results, rep, err
		}
	}
	return results, rep, nil
}

// runInline is the degenerate-fleet fast path: every job executes on the
// caller goroutine, in input order, with the same report shape as the
// pooled path (Workers=1, Inline=true).
func (r *Runner[T, R]) runInline(items []T) ([]R, *Report, error) {
	n := len(items)
	results := make([]R, n)
	jobs := make([]JobMetric, n)
	perWorker := make([]WorkerMetric, 1)
	wm := &perWorker[0]

	ft := newFleetTracks(r.Trace, 1)
	var firstErr error
	start := time.Now()
	for i := range items {
		t0 := time.Now()
		if ft != nil {
			ft.tracks[0].Begin(ft.nJob)
		}
		res, err := r.Fn(0, i, items[i])
		if ft != nil {
			ft.tracks[0].EndArg(ft.nIndex, uint64(i))
		}
		wall := time.Since(t0).Seconds()
		results[i] = res
		if err != nil && firstErr == nil {
			firstErr = err
		}
		var blocks uint64
		if err == nil && r.Blocks != nil {
			blocks = r.Blocks(res)
		}
		jobs[i] = JobMetric{
			Index: i, Worker: 0, WallSeconds: wall,
			QueueWaitSeconds: t0.Sub(start).Seconds(), Blocks: blocks,
		}
		wm.Jobs++
		wm.WallSeconds += wall
		wm.Blocks += blocks
	}
	rep := &Report{
		Workers:     1,
		Jobs:        n,
		WallSeconds: time.Since(start).Seconds(),
		Blocks:      wm.Blocks,
		Inline:      true,
		PerJob:      jobs,
		PerWorker:   perWorker,
	}
	if wm.IdleSeconds = rep.WallSeconds - wm.WallSeconds; wm.IdleSeconds < 0 {
		wm.IdleSeconds = 0
	}
	if wm.WallSeconds > 0 {
		wm.BlocksPerSec = float64(wm.Blocks) / wm.WallSeconds
	}
	if rep.WallSeconds > 0 {
		rep.BlocksPerSec = float64(rep.Blocks) / rep.WallSeconds
	}
	return results, rep, firstErr
}

// Map runs fn over items on up to workers goroutines and returns the
// results in input order. It is the uninstrumented convenience over
// Runner; the error of the lowest failing input index is returned.
func Map[T, R any](workers int, items []T, fn func(index int, item T) (R, error)) ([]R, error) {
	r := Runner[T, R]{
		Workers: workers,
		Fn:      func(_, index int, item T) (R, error) { return fn(index, item) },
	}
	out, _, err := r.Run(items)
	return out, err
}

// Each runs fn over every index in input-sharded fashion with no result
// collection — the fire-and-collect-errors variant for jobs that write
// into caller-owned, index-disjoint slots.
func Each(workers, n int, fn func(index int) error) error {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	_, err := Map(workers, idx, func(_ int, i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
