package prefetch

import (
	"time"

	"rev/internal/telemetry"
)

// prefetchTelemetry holds pre-resolved metric handles so emission sites
// pay one nil check, matching the engine/telemetry idiom. A nil
// *prefetchTelemetry (no Set) disables everything; the atomic Stats
// counters stay on regardless.
type prefetchTelemetry struct {
	issued  *telemetry.Counter
	batches *telemetry.Counter
	filled  *telemetry.Counter
	failed  *telemetry.Counter
	hits    *telemetry.Counter
	late    *telemetry.Counter
	misses  *telemetry.Counter
	stale   *telemetry.Counter
	wasted  *telemetry.Counter
	dropped *telemetry.Counter

	fillLatency *telemetry.Histogram
	batchDepth  *telemetry.Histogram

	track    *telemetry.Track
	spanName telemetry.NameID
	argName  telemetry.NameID
}

func newPrefetchTelemetry(set *telemetry.Set) *prefetchTelemetry {
	if set == nil {
		return nil
	}
	t := &prefetchTelemetry{}
	if reg := set.Registry(); reg != nil {
		t.issued = reg.Counter("prefetch_issued_total", "speculative signature queries sent to the source")
		t.batches = reg.Counter("prefetch_batches_total", "speculative batch calls (wire round trips)")
		t.filled = reg.Counter("prefetch_filled_total", "speculative answers cached in the prefetch buffer")
		t.failed = reg.Counter("prefetch_fill_failed_total", "speculative queries dropped on transport error")
		t.hits = reg.Counter("prefetch_hits_total", "engine lookups served from the prefetch buffer")
		t.late = reg.Counter("prefetch_late_total", "engine lookups that coalesced with an in-flight prefetch")
		t.misses = reg.Counter("prefetch_misses_total", "engine lookups that fell back to a blocking round trip")
		t.stale = reg.Counter("prefetch_stale_total", "buffered answers discarded on table-epoch change")
		t.wasted = reg.Counter("prefetch_wasted_total", "buffered answers overwritten before any engine read them")
		t.dropped = reg.Counter("prefetch_dropped_observes_total", "commit observations dropped under channel pressure")
		t.fillLatency = reg.Histogram("prefetch_fill_latency_ns", "issue-to-fill latency of one speculative batch, nanoseconds")
		t.batchDepth = reg.Histogram("prefetch_batch_depth", "speculative queries per batch call")
	}
	if rec := set.Recorder(); rec != nil {
		t.track = rec.Track("prefetch")
		t.spanName = rec.Name("prefetch/batch")
		t.argName = rec.Name("queries")
	}
	return t
}

// batchBegin opens the trace span for one speculative batch.
func (t *prefetchTelemetry) batchBegin(n int) {
	if t.batches != nil {
		t.batches.Inc()
	}
	if t.issued != nil {
		t.issued.Add(uint64(n))
	}
	if t.batchDepth != nil {
		t.batchDepth.Observe(uint64(n))
	}
	t.track.Begin(t.spanName)
}

// batchEnd closes the span and records issue-to-fill latency.
func (t *prefetchTelemetry) batchEnd(n int, d time.Duration) {
	if t.fillLatency != nil {
		t.fillLatency.Observe(uint64(d.Nanoseconds()))
	}
	t.track.EndArg(t.argName, uint64(n))
}
