// Command revbench regenerates the paper's tables and figures.
//
// Usage:
//
//	revbench -exp all                 # everything (long)
//	revbench -exp fig7                # one experiment
//	revbench -exp fig6 -instrs 2e6    # longer runs
//	revbench -exp tablesize -scale 0.1
//	revbench -exp fig6,fig7 -json BENCH_hotpath.json \
//	    -ref fig6=4.863,fig7=4.789    # machine-readable perf record
//	revbench -exp fig6,fig7 -parallel 4 -parjson BENCH_parallel.json
//
// Experiments: table1, table2, bbstats, fig6, fig7, fig8, fig9, fig10,
// fig11, fig12, tablesize, cfionly, softcfi, power, all.
//
// Simulations fan out across the validation fleet (internal/fleet):
// -parallel N bounds the worker goroutines (default: all CPUs). Figure
// tables are collected in benchmark order, so output is byte-identical
// at any worker count.
//
// With -json, revbench also runs a hot-path probe — one REV-protected
// workload measured with runtime.MemStats around it — and writes wall time
// per experiment plus validated-blocks/sec, allocations/block, and memo hit
// rates to the given file. -ref name=seconds pairs embed a reference (e.g.
// pre-optimization) wall time per experiment so the file records the
// speedup alongside the measurement.
//
// With -parjson, revbench times every selected experiment twice — once
// serial (1 worker) and once on the fleet (-parallel workers) — verifies
// the rendered tables are byte-identical, and writes the serial/parallel
// wall times, speedups, and per-worker blocks-per-second to the given
// file (the committed BENCH_parallel.json).
//
// With -lanesjson, revbench probes the intra-run validation pipeline: one
// REV-protected workload is run serially (-lanes 0) and then pipelined at
// each lane count in {1, 4, auto}, the full result record (output, cycle
// counts, cache/SC/engine statistics, verdict) is checked for byte
// identity against the serial run, and wall times, speedups, and
// allocations per validated block are written to the given file (the
// committed BENCH_pipeline.json).
//
// With -scalingjson, revbench sweeps the pipelined executor across lanes
// {1, 2, 4} x publish-batch {1, 16, 64} x GOMAXPROCS (powers of two up to
// NumCPU), measuring wall time, byte identity against the serial run, and
// steady-state allocations per run at every point, and writes the
// self-annotating scaling record (the committed BENCH_pipeline.json): the
// single_cpu and scaling_valid fields are machine-written from the
// recording host, so the artifact cannot claim an unproven speedup. Exits
// nonzero on identity divergence or when any point allocates past
// -scalingallocs (default 0 — the run-arena contract).
//
// With -teljson, revbench probes the telemetry overhead: one REV-protected
// workload is timed (best of -telrounds) with telemetry disabled, with the
// metrics registry enabled, and with metrics + tracing enabled; results
// are checked for byte identity across all three, and the record (the
// committed BENCH_telemetry.json) is written. When the metrics-enabled
// overhead exceeds -telthreshold percent, revbench exits nonzero — the CI
// telemetry-overhead gate.
//
// With -evidencejson, revbench probes the attestation-evidence emitter
// (docs/EVIDENCE.md): one REV-protected workload is timed (best of
// -telrounds) without and with a hash-chained evidence stream attached,
// results are checked for byte identity, the emitted stream is checked
// for run-to-run byte identity and replayed through the offline
// verifier, and the record (the committed BENCH_evidence.json) is
// written. When the evidence-enabled overhead exceeds -evthreshold
// percent, revbench exits nonzero — the CI evidence-overhead gate.
//
// With -metricsjson, revbench runs one REV-protected workload with the
// metrics registry attached and writes the registry snapshot as JSON (the
// revdump -what metrics input).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rev/internal/core"
	"rev/internal/evidence"
	"rev/internal/experiments"
	"rev/internal/fleet"
	"rev/internal/prefetch"
	"rev/internal/sigserve"
	"rev/internal/sigtable"
	"rev/internal/stats"
	"rev/internal/telemetry"
	"rev/internal/workload"
)

// hostMeta pins the hardware/runtime context a benchmark record was
// produced under, so committed BENCH_*.json files from different
// machines stay comparable (wall times and speedups are only meaningful
// relative to the recording host).
type hostMeta struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

// hostInfo samples the recording host.
func hostInfo() hostMeta {
	return hostMeta{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
}

// expTiming is one experiment's wall-clock record.
type expTiming struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	// RefSeconds/Speedup are present when -ref supplied a reference time.
	RefSeconds float64 `json:"ref_seconds,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
}

// hotPath records the per-block cost probe: a single REV-protected run
// bracketed by runtime.ReadMemStats.
type hotPath struct {
	Workload       string  `json:"workload"`
	Instrs         uint64  `json:"instrs"`
	Blocks         uint64  `json:"blocks"`
	WallSeconds    float64 `json:"wall_seconds"`
	BlocksPerSec   float64 `json:"blocks_per_sec"`
	Mallocs        uint64  `json:"mallocs"`
	AllocsPerBlock float64 `json:"allocs_per_block"`
	MemoHits       uint64  `json:"memo_hits"`
	MemoMisses     uint64  `json:"memo_misses"`
}

type benchReport struct {
	Generated   string      `json:"generated"`
	Host        hostMeta    `json:"host"`
	Instrs      uint64      `json:"instrs"`
	Scale       float64     `json:"scale"`
	Experiments []expTiming `json:"experiments"`
	HotPath     *hotPath    `json:"hotpath,omitempty"`
}

// laneTiming is one pipelined configuration's record in the lane probe.
type laneTiming struct {
	Lanes       int     `json:"lanes"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is serial wall / pipelined wall for the same workload.
	Speedup float64 `json:"speedup"`
	// Identical reports that the pipelined run's full result record —
	// output, halt state, verdict, cycle counts, branch/cache/SC/engine
	// statistics — is byte-identical to the serial run's.
	Identical      bool    `json:"identical"`
	Mallocs        uint64  `json:"mallocs"`
	AllocsPerBlock float64 `json:"allocs_per_block"`
}

// pipeReport is the BENCH_pipeline.json payload: the serial baseline and
// one laneTiming per probed lane count.
type pipeReport struct {
	Generated string   `json:"generated"`
	Host      hostMeta `json:"host"`
	Workload  string   `json:"workload"`
	Instrs    uint64   `json:"instrs"`
	Scale     float64  `json:"scale"`
	CPUs      int      `json:"cpus"`
	// GOMAXPROCS and AutoLanes record the host-derived sizing inputs:
	// fleet workers default to GOMAXPROCS and -lanes -1 resolves to
	// AutoLanes, so the file pins what "auto" meant on this machine.
	GOMAXPROCS int `json:"gomaxprocs"`
	AutoLanes  int `json:"auto_lanes"`
	// SingleCPU and ScalingValid are machine-written host truth (the same
	// contract as the -scalingjson record): SingleCPU is NumCPU < 2, and
	// ScalingValid means the speedup columns were measured on a multi-CPU
	// host with byte identity holding at every probed lane count. CI
	// asserts SingleCPU against the runner's nproc, so a record produced
	// on the wrong host class cannot be committed silently.
	SingleCPU            bool         `json:"single_cpu"`
	ScalingValid         bool         `json:"scaling_valid"`
	Blocks               uint64       `json:"blocks"`
	SerialSeconds        float64      `json:"serial_seconds"`
	SerialMallocs        uint64       `json:"serial_mallocs"`
	SerialAllocsPerBlock float64      `json:"serial_allocs_per_block"`
	Pipelined            []laneTiming `json:"pipelined"`
	// Note flags hardware bounds on the measurement (a 1-CPU host cannot
	// show pipelined wall-clock speedup; byte identity is the
	// hardware-independent check).
	Note string `json:"note,omitempty"`
}

// parTiming is one experiment's serial-vs-fleet record.
type parTiming struct {
	ID              string  `json:"id"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	// Identical reports that the serial and fleet table renderings are
	// byte-for-byte equal (the determinism contract of internal/fleet).
	Identical bool `json:"identical"`
}

// parReport is the BENCH_parallel.json payload.
type parReport struct {
	Generated   string        `json:"generated"`
	Host        hostMeta      `json:"host"`
	Instrs      uint64        `json:"instrs"`
	Scale       float64       `json:"scale"`
	CPUs        int           `json:"cpus"`
	Workers     int           `json:"workers"`
	Experiments []parTiming   `json:"experiments"`
	Fleet       *fleet.Report `json:"fleet,omitempty"`
	// TotalSpeedup is sum(serial)/sum(parallel) over the experiment set.
	TotalSpeedup float64 `json:"total_speedup"`
	// Note flags hardware bounds on the measurement (e.g. fewer CPUs
	// than workers caps the achievable wall-clock speedup).
	Note string `json:"note,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (comma separated), or 'all'")
	instrs := flag.Uint64("instrs", 1_000_000, "committed instructions per benchmark run")
	scale := flag.Float64("scale", 1.0, "workload static-size scale (1.0 = paper-matched)")
	parallel := flag.Int("parallel", 0, "validation-fleet worker goroutines (0 = GOMAXPROCS)")
	attackInstrs := flag.Uint64("attackinstrs", 100_000, "instruction budget per attack scenario")
	jsonPath := flag.String("json", "", "write machine-readable timings (e.g. BENCH_hotpath.json)")
	parJSONPath := flag.String("parjson", "", "write serial-vs-fleet timings (e.g. BENCH_parallel.json)")
	lanesJSONPath := flag.String("lanesjson", "", "write serial-vs-pipelined lane timings (e.g. BENCH_pipeline.json)")
	scalingJSONPath := flag.String("scalingjson", "", "write the lanes x batch x GOMAXPROCS scaling sweep (e.g. BENCH_pipeline.json); exits nonzero on identity divergence or allocs past -scalingallocs")
	scalingRounds := flag.Int("scalingrounds", 3, "timed rounds per sweep point in the -scalingjson probe (best-of)")
	scalingAllocs := flag.Uint64("scalingallocs", 0, "max tolerated steady-state allocs per run at any -scalingjson sweep point")
	telJSONPath := flag.String("teljson", "", "write the telemetry-overhead probe record (e.g. BENCH_telemetry.json); exits nonzero past -telthreshold")
	telThreshold := flag.Float64("telthreshold", 2.0, "max tolerated metrics-enabled overhead percent for -teljson")
	telRounds := flag.Int("telrounds", 5, "timed rounds per configuration in the -teljson probe (best-of)")
	evJSONPath := flag.String("evidencejson", "", "write the evidence-overhead probe record (e.g. BENCH_evidence.json); exits nonzero past -evthreshold")
	evThreshold := flag.Float64("evthreshold", 2.0, "max tolerated evidence-enabled overhead percent for -evidencejson")
	metricsJSONPath := flag.String("metricsjson", "", "run one protected workload with metrics enabled and write the registry snapshot JSON")
	remoteJSONPath := flag.String("remotejson", "", "write the remote-vs-local signature-sourcing probe (e.g. BENCH_remote.json): loopback revserved, snapshot and lookup modes, injected latency ladder")
	prefetchJSONPath := flag.String("prefetchjson", "", "write the predictive-prefetch probe (e.g. BENCH_prefetch.json): lookup-mode loopback revserved across a prefetch-depth x service-delay grid")
	prefetchDepths := flag.String("prefetchdepths", "0,1,4,16,64", "comma-separated prefetch depths for -prefetchjson (0 = unprefetched baseline)")
	prefetchMax := flag.Float64("prefetchmax", 0, "for -prefetchjson: max tolerated best-depth slowdown vs local at 5ms delay (0 = no gate)")
	ref := flag.String("ref", "", "reference wall times as id=seconds pairs, comma separated")
	flag.Parse()

	refTimes, err := parseRef(*ref)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revbench: -ref: %v\n", err)
		os.Exit(2)
	}

	suiteCfg := experiments.Config{
		MaxInstrs: *instrs,
		Scale:     *scale,
		Parallel:  *parallel,
	}
	suite := experiments.NewSuite(suiteCfg)

	table := func(t *stats.Table) func(*experiments.Suite) (*stats.Table, error) {
		return func(*experiments.Suite) (*stats.Table, error) { return t, nil }
	}
	all := []selectedExp{
		{"table2", table(experiments.Table2())},
		{"table1", func(s *experiments.Suite) (*stats.Table, error) {
			return experiments.Table1(*attackInstrs, s.Cfg.Parallel)
		}},
		{"bbstats", (*experiments.Suite).BBStats},
		{"fig6", (*experiments.Suite).Fig6},
		{"fig7", (*experiments.Suite).Fig7},
		{"fig8", (*experiments.Suite).Fig8},
		{"fig9", (*experiments.Suite).Fig9},
		{"fig10", (*experiments.Suite).Fig10},
		{"fig11", (*experiments.Suite).Fig11},
		{"fig12", (*experiments.Suite).Fig12},
		{"tablesize", (*experiments.Suite).TableSizes},
		{"cfionly", (*experiments.Suite).CFIOnly},
		{"softcfi", (*experiments.Suite).SoftCFI},
		{"power", table(experiments.Power())},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	selected := all[:0:0]
	for _, e := range all {
		if want["all"] || want[e.id] {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "revbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	if *telJSONPath != "" {
		rep, err := probeTelemetry(*instrs, *scale, *telRounds, *telThreshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: telemetry probe: %v\n", err)
			os.Exit(1)
		}
		writeJSON(*telJSONPath, rep)
		if !rep.WithinThreshold {
			fmt.Fprintf(os.Stderr, "revbench: metrics-enabled overhead %.2f%% exceeds the %.2f%% gate\n",
				rep.MetricsOverheadPct, rep.ThresholdPct)
			os.Exit(1)
		}
		return
	}

	if *evJSONPath != "" {
		rep, err := probeEvidence(*instrs, *scale, *telRounds, *evThreshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: evidence probe: %v\n", err)
			os.Exit(1)
		}
		writeJSON(*evJSONPath, rep)
		if !rep.WithinThreshold {
			fmt.Fprintf(os.Stderr, "revbench: evidence hot-path overhead %.2f%% exceeds the %.2f%% gate\n",
				rep.HotPathOverheadPct, rep.ThresholdPct)
			os.Exit(1)
		}
		return
	}

	if *metricsJSONPath != "" {
		if err := dumpMetricsJSON(*metricsJSONPath, *instrs, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "revbench: metrics snapshot: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *remoteJSONPath != "" {
		rep, err := probeRemote(*instrs, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: remote probe: %v\n", err)
			os.Exit(1)
		}
		writeJSON(*remoteJSONPath, rep)
		if !rep.AllIdentical {
			fmt.Fprintln(os.Stderr, "revbench: remote runs diverged from the local baseline")
			os.Exit(1)
		}
		return
	}

	if *prefetchJSONPath != "" {
		depths, err := parseDepths(*prefetchDepths)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: -prefetchdepths: %v\n", err)
			os.Exit(2)
		}
		rep, err := probePrefetch(*instrs, *scale, depths, *prefetchMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: prefetch probe: %v\n", err)
			os.Exit(1)
		}
		writeJSON(*prefetchJSONPath, rep)
		if !rep.AllIdentical {
			fmt.Fprintln(os.Stderr, "revbench: prefetched runs diverged from the local baseline")
			os.Exit(1)
		}
		if !rep.WithinGate {
			fmt.Fprintf(os.Stderr, "revbench: best prefetch slowdown %.2fx at 5ms exceeds the %.2fx gate\n",
				rep.Best5msSlowdown, rep.GateMax)
			os.Exit(1)
		}
		return
	}

	if *scalingJSONPath != "" {
		rep, err := probeScaling(*instrs, *scale, *scalingRounds, *scalingAllocs)
		if rep != nil {
			// A divergence or alloc-budget failure still writes the record:
			// the artifact self-annotates (scaling_valid=false or the
			// offending allocs_per_run column) rather than vanishing.
			writeJSON(*scalingJSONPath, rep)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: scaling probe: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *lanesJSONPath != "" {
		rep, err := probePipeline(*instrs, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: pipeline probe: %v\n", err)
			os.Exit(1)
		}
		writeJSON(*lanesJSONPath, rep)
		return
	}

	if *parJSONPath != "" {
		rep, err := probeParallel(suiteCfg, selected)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: parallel probe: %v\n", err)
			os.Exit(1)
		}
		writeJSON(*parJSONPath, rep)
		return
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      hostInfo(),
		Instrs:    *instrs,
		Scale:     *scale,
	}
	for _, e := range selected {
		if *jsonPath != "" {
			// Benchmarking mode: time each experiment against a fresh suite
			// so figures sharing cached simulation runs (e.g. fig6/fig7)
			// each pay — and report — their full cost.
			suite = experiments.NewSuite(suiteCfg)
		}
		start := time.Now()
		t, err := e.run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		et := expTiming{ID: e.id, WallSeconds: round3(wall)}
		if r, ok := refTimes[e.id]; ok && wall > 0 {
			et.RefSeconds = r
			et.Speedup = round3(r / wall)
		}
		report.Experiments = append(report.Experiments, et)
		fmt.Println(t.String())
	}

	if *jsonPath != "" {
		hp, err := probeHotPath(*instrs, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revbench: hot-path probe: %v\n", err)
			os.Exit(1)
		}
		report.HotPath = hp
		writeJSON(*jsonPath, &report)
	}
}

type selectedExp struct {
	id  string
	run func(s *experiments.Suite) (*stats.Table, error)
}

// probeParallel times every selected experiment serial (1 worker) and on
// the fleet, checks the rendered tables for byte identity, and folds the
// fleet's per-worker metrics into the report. Each timing uses a fresh
// suite so no run is served from a previous experiment's cache.
func probeParallel(cfg experiments.Config, selected []selectedExp) (*parReport, error) {
	workers := fleet.Workers(cfg.Parallel, 1<<30)
	rep := &parReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      hostInfo(),
		Instrs:    cfg.MaxInstrs,
		Scale:     cfg.Scale,
		CPUs:      runtime.NumCPU(),
		Workers:   workers,
	}
	serialCfg := cfg
	serialCfg.Parallel = 1
	var sumSerial, sumPar float64
	var parSuite *experiments.Suite
	for _, e := range selected {
		s1 := experiments.NewSuite(serialCfg)
		t0 := time.Now()
		serialTbl, err := e.run(s1)
		if err != nil {
			return nil, fmt.Errorf("%s (serial): %w", e.id, err)
		}
		serialWall := time.Since(t0).Seconds()

		parSuite = experiments.NewSuite(cfg)
		t0 = time.Now()
		parTbl, err := e.run(parSuite)
		if err != nil {
			return nil, fmt.Errorf("%s (parallel): %w", e.id, err)
		}
		parWall := time.Since(t0).Seconds()

		pt := parTiming{
			ID:              e.id,
			SerialSeconds:   round3(serialWall),
			ParallelSeconds: round3(parWall),
			Identical:       serialTbl.String() == parTbl.String(),
		}
		if parWall > 0 {
			pt.Speedup = round3(serialWall / parWall)
		}
		if !pt.Identical {
			return nil, fmt.Errorf("%s: fleet output diverged from serial run", e.id)
		}
		sumSerial += serialWall
		sumPar += parWall
		rep.Experiments = append(rep.Experiments, pt)
		fmt.Printf("%-10s serial %7.3fs  fleet(%d) %7.3fs  speedup %5.2fx  identical %v\n",
			e.id, serialWall, workers, parWall, pt.Speedup, pt.Identical)
	}
	if parSuite != nil {
		rep.Fleet = parSuite.FleetReport()
	}
	if sumPar > 0 {
		rep.TotalSpeedup = round3(sumSerial / sumPar)
	}
	if rep.CPUs < workers {
		rep.Note = fmt.Sprintf(
			"host has %d CPU(s) for %d workers: wall-clock speedup is bounded by min(cpus, workers); byte-identity is the hardware-independent check",
			rep.CPUs, workers)
	}
	return rep, nil
}

// probePipeline runs one REV-protected workload serially (-lanes 0) and
// pipelined at lane counts {1, 4, auto}, checks every pipelined result for
// byte identity against the serial baseline, and records wall times and
// allocations per validated block. The lane memo counters are the one
// sanctioned difference (K per-lane memos shard the block stream, so
// hit/miss splits differ); everything else must match exactly.
func probePipeline(instrs uint64, scale float64) (*pipeReport, error) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		return nil, err
	}
	p = p.Scaled(scale)
	rc := core.DefaultRunConfig()
	rc.MaxInstrs = instrs
	cfg := core.DefaultConfig()
	cfg.Format = sigtable.Normal
	rc.REV = &cfg

	rep := &pipeReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Host:       hostInfo(),
		Workload:   p.Name,
		Instrs:     instrs,
		Scale:      scale,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		AutoLanes:  core.AutoLanes(),
		SingleCPU:  runtime.NumCPU() < 2,
	}

	// Prepare once — workload build, CFG extraction, signature-table
	// construction and encryption are the trusted loader's job, not the
	// validator hot path this probe measures. Every timed run below
	// validates against the same immutable decrypted snapshot.
	prep, err := core.Prepare(p.Builder(), rc)
	if err != nil {
		return nil, err
	}

	// Warm up once so neither configuration pays first-run costs.
	if _, _, _, err := timedRun(prep, 0); err != nil {
		return nil, err
	}
	serial, serialWall, serialMallocs, err := timedRun(prep, 0)
	if err != nil {
		return nil, err
	}
	if serial.Violation != nil {
		return nil, fmt.Errorf("clean workload flagged: %v", serial.Violation)
	}
	serialSig := identitySig(serial)
	rep.Blocks = serial.Pipe.BBCount
	rep.SerialSeconds = round3(serialWall)
	rep.SerialMallocs = serialMallocs
	if rep.Blocks > 0 {
		rep.SerialAllocsPerBlock = round3(float64(serialMallocs) / float64(rep.Blocks))
	}

	laneSet := []int{1, 4}
	if a := core.AutoLanes(); a > 0 && a != 1 && a != 4 {
		laneSet = append(laneSet, a)
	}
	for _, lanes := range laneSet {
		res, wall, mallocs, err := timedRun(prep, lanes)
		if err != nil {
			return nil, fmt.Errorf("lanes=%d: %w", lanes, err)
		}
		lt := laneTiming{
			Lanes:       lanes,
			WallSeconds: round3(wall),
			Identical:   identitySig(res) == serialSig,
			Mallocs:     mallocs,
		}
		if wall > 0 {
			lt.Speedup = round3(serialWall / wall)
		}
		if rep.Blocks > 0 {
			lt.AllocsPerBlock = round3(float64(mallocs) / float64(rep.Blocks))
		}
		if !lt.Identical {
			return nil, fmt.Errorf("lanes=%d: pipelined result diverged from serial run", lanes)
		}
		rep.Pipelined = append(rep.Pipelined, lt)
		fmt.Printf("lanes=%d    serial %7.3fs  pipelined %7.3fs  speedup %5.2fx  identical %v  allocs/block %.3f\n",
			lanes, serialWall, wall, lt.Speedup, lt.Identical, lt.AllocsPerBlock)
	}
	// Every probed lane count above matched the serial baseline (a
	// divergence returns early), so validity reduces to the host class.
	rep.ScalingValid = !rep.SingleCPU
	if rep.GOMAXPROCS < 2 {
		rep.Note = fmt.Sprintf(
			"host has %d CPU(s): pipelined wall-clock speedup needs >=2 CPUs (lanes only add scheduler time-slicing here, and auto-lanes resolves to %d); byte-identity is the hardware-independent check",
			rep.GOMAXPROCS, core.AutoLanes())
	}
	return rep, nil
}

// telReport is the BENCH_telemetry.json payload: best-of-N wall times for
// one REV-protected workload with telemetry disabled, with the metrics
// registry enabled, and with metrics + tracing enabled.
type telReport struct {
	Generated string   `json:"generated"`
	Host      hostMeta `json:"host"`
	Workload  string   `json:"workload"`
	Instrs    uint64   `json:"instrs"`
	Scale     float64  `json:"scale"`
	Rounds    int      `json:"rounds"`
	Blocks    uint64   `json:"blocks"`
	// DisabledSeconds is the nil-Set baseline (instrumentation compiled in,
	// every emission site one predicted-not-taken nil check).
	DisabledSeconds float64 `json:"disabled_seconds"`
	MetricsSeconds  float64 `json:"metrics_seconds"`
	TraceSeconds    float64 `json:"trace_seconds"`
	// MetricsOverheadPct is (metrics - disabled) / disabled * 100, the
	// gated number; TraceOverheadPct is informational (tracing is a debug
	// aid, not an always-on path).
	MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
	TraceOverheadPct   float64 `json:"trace_overhead_pct"`
	ThresholdPct       float64 `json:"threshold_pct"`
	WithinThreshold    bool    `json:"within_threshold"`
	// Identical reports that all three configurations produced the same
	// full result record (telemetry must never alter simulated results).
	Identical              bool    `json:"identical"`
	DisabledAllocsPerBlock float64 `json:"disabled_allocs_per_block"`
	MetricsAllocsPerBlock  float64 `json:"metrics_allocs_per_block"`
	// PrefetchDisabledSeconds/PrefetchMetricsSeconds time the same
	// workload in remote lookup mode (zero-delay loopback, prefetch depth
	// 4) without and with the metrics registry — the prefetch counters
	// are held to the same overhead budget as the engine's.
	PrefetchDisabledSeconds float64 `json:"prefetch_disabled_seconds"`
	PrefetchMetricsSeconds  float64 `json:"prefetch_metrics_seconds"`
	PrefetchOverheadPct     float64 `json:"prefetch_overhead_pct"`
}

// probeTelemetry times one prepared workload under the three telemetry
// configurations, best-of-rounds each, and checks result byte identity.
func probeTelemetry(instrs uint64, scale float64, rounds int, threshold float64) (*telReport, error) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		return nil, err
	}
	p = p.Scaled(scale)
	rc := core.DefaultRunConfig()
	rc.MaxInstrs = instrs
	cfg := core.DefaultConfig()
	cfg.Format = sigtable.Normal
	rc.REV = &cfg
	prep, err := core.Prepare(p.Builder(), rc)
	if err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}

	// Warm up once so no configuration pays first-run costs.
	if _, _, _, err := timedRunTel(prep, nil); err != nil {
		return nil, err
	}
	// The three configurations are timed in interleaved rounds (disabled,
	// metrics, metrics+trace, repeat) keeping the per-configuration minimum
	// wall: interleaving spreads thermal and scheduler drift evenly, and the
	// minimum is the least-noise estimator for a deterministic workload.
	// Sets are built fresh per round so trace rings and registries never
	// accumulate across rounds.
	type telCfg struct {
		mkSet   func() *telemetry.Set
		res     *core.Result
		wall    float64
		mallocs uint64
	}
	cfgs := [3]telCfg{
		{mkSet: func() *telemetry.Set { return nil }},
		{mkSet: func() *telemetry.Set { return &telemetry.Set{Reg: telemetry.NewRegistry()} }},
		{mkSet: func() *telemetry.Set {
			return &telemetry.Set{Reg: telemetry.NewRegistry(), Trace: telemetry.NewRecorder(0)}
		}},
	}
	for r := 0; r < rounds; r++ {
		for i := range cfgs {
			c := &cfgs[i]
			res, wall, mallocs, err := timedRunTel(prep, c.mkSet())
			if err != nil {
				return nil, err
			}
			if c.res == nil || wall < c.wall {
				c.res, c.wall, c.mallocs = res, wall, mallocs
			}
		}
	}
	disabled, dWall, dMallocs := cfgs[0].res, cfgs[0].wall, cfgs[0].mallocs
	metricsRes, mWall, mMallocs := cfgs[1].res, cfgs[1].wall, cfgs[1].mallocs
	traceRes, tWall := cfgs[2].res, cfgs[2].wall
	if disabled.Violation != nil {
		return nil, fmt.Errorf("clean workload flagged: %v", disabled.Violation)
	}

	sig := identitySig(disabled)

	// Prefetch pair: the same workload in remote lookup mode over a
	// zero-delay loopback server at prefetch depth 4, without and with
	// the metrics registry. The two instances are prepared once (the
	// prefetcher is wired to the Set at prepare time) and timed in the
	// same interleaved best-of-rounds discipline.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := sigserve.NewServer()
	for _, st := range prep.Tables {
		srv.Publish("default", st.Module, *st.Table, st.Snap)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	type pfCfg struct {
		prep   *core.Prepared
		client *sigserve.Client
		res    *core.Result
		wall   float64
	}
	var pf [2]pfCfg
	pfSets := [2]*telemetry.Set{nil, {Reg: telemetry.NewRegistry()}}
	for i := range pf {
		client, err := sigserve.NewClient(sigserve.ClientConfig{Addr: ln.Addr().String(), LookupMode: true})
		if err != nil {
			return nil, err
		}
		rcp := rc
		rcp.Prefetch = prefetch.Config{Depth: 4}
		rcp.Telemetry = pfSets[i]
		pp, err := core.PrepareRemote(p.Builder(), rcp, client)
		if err != nil {
			client.Close()
			return nil, err
		}
		pf[i] = pfCfg{prep: pp, client: client}
		defer pp.Close()
		defer client.Close()
		if _, err := pp.Run(); err != nil { // warm-up (and buffer fill)
			return nil, err
		}
	}
	for r := 0; r < rounds; r++ {
		for i := range pf {
			c := &pf[i]
			start := time.Now()
			res, err := c.prep.Run()
			wall := time.Since(start).Seconds()
			if err != nil {
				return nil, err
			}
			if c.res == nil || wall < c.wall {
				c.res, c.wall = res, wall
			}
		}
	}
	pfIdentical := true
	for i := range pf {
		if identitySig(pf[i].res) != sig || pf[i].res.SourceNotes != nil {
			pfIdentical = false
		}
	}
	rep := &telReport{
		Generated:       time.Now().UTC().Format(time.RFC3339),
		Host:            hostInfo(),
		Workload:        p.Name,
		Instrs:          instrs,
		Scale:           scale,
		Rounds:          rounds,
		Blocks:          disabled.Pipe.BBCount,
		DisabledSeconds: round3(dWall),
		MetricsSeconds:  round3(mWall),
		TraceSeconds:    round3(tWall),
		ThresholdPct:    threshold,
		Identical: identitySig(metricsRes) == sig && identitySig(traceRes) == sig &&
			pfIdentical,
		PrefetchDisabledSeconds: round3(pf[0].wall),
		PrefetchMetricsSeconds:  round3(pf[1].wall),
	}
	if dWall > 0 {
		rep.MetricsOverheadPct = round3((mWall - dWall) / dWall * 100)
		rep.TraceOverheadPct = round3((tWall - dWall) / dWall * 100)
	}
	if pf[0].wall > 0 {
		rep.PrefetchOverheadPct = round3((pf[1].wall - pf[0].wall) / pf[0].wall * 100)
	}
	rep.WithinThreshold = rep.MetricsOverheadPct <= threshold &&
		rep.PrefetchOverheadPct <= threshold
	if rep.Blocks > 0 {
		rep.DisabledAllocsPerBlock = round3(float64(dMallocs) / float64(rep.Blocks))
		rep.MetricsAllocsPerBlock = round3(float64(mMallocs) / float64(rep.Blocks))
	}
	if !rep.Identical {
		return nil, fmt.Errorf("telemetry-enabled result diverged from the disabled run")
	}
	fmt.Printf("telemetry  disabled %7.3fs  metrics %7.3fs (%+.2f%%)  metrics+trace %7.3fs (%+.2f%%)  prefetch %7.3fs vs %7.3fs (%+.2f%%)  identical %v\n",
		dWall, mWall, rep.MetricsOverheadPct, tWall, rep.TraceOverheadPct,
		pf[0].wall, pf[1].wall, rep.PrefetchOverheadPct, rep.Identical)
	return rep, nil
}

// timedRunTel is timedRun with a per-instance telemetry Set (lane count
// from the prepared config).
func timedRunTel(prep *core.Prepared, set *telemetry.Set) (*core.Result, float64, uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := prep.RunWithTelemetry(set)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, wall, after.Mallocs - before.Mallocs, nil
}

// dumpMetricsJSON runs one REV-protected workload with the metrics
// registry attached (auto lanes, so the pipeline/lane metrics populate on
// multi-CPU hosts) and writes the registry snapshot as JSON.
func dumpMetricsJSON(path string, instrs uint64, scale float64) error {
	p, err := workload.ByName("bzip2")
	if err != nil {
		return err
	}
	p = p.Scaled(scale)
	rc := core.DefaultRunConfig()
	rc.MaxInstrs = instrs
	rc.Lanes = -1
	cfg := core.DefaultConfig()
	cfg.Format = sigtable.Normal
	rc.REV = &cfg
	reg := telemetry.NewRegistry()
	rc.Telemetry = &telemetry.Set{Reg: reg}
	res, err := core.Run(p.Builder(), rc)
	if err != nil {
		return err
	}
	if res.Violation != nil {
		return fmt.Errorf("clean workload flagged: %v", res.Violation)
	}
	writeJSON(path, reg.Snapshot())
	return nil
}

// timedRun executes one prepared run at the given lane count, bracketed by
// GC + MemStats reads, returning the result, wall seconds, and heap
// allocation count.
func timedRun(prep *core.Prepared, lanes int) (*core.Result, float64, uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := prep.RunWithLanes(lanes)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, wall, after.Mallocs - before.Mallocs, nil
}

// identitySig renders the parts of a Result that the determinism contract
// covers. Engine memo counters are zeroed before rendering: the pipelined
// executor shards the signature memo per lane, so hit/miss splits (and
// nothing else) legitimately differ from the serial run.
func identitySig(res *core.Result) string {
	eng := res.Engine
	eng.MemoHits, eng.MemoMisses = 0, 0
	return fmt.Sprintf("%v|%v|%v|%+v|%+v|%d|%+v|%+v|%+v|%+v|%+v|%+v|%+v|%+v",
		res.Output, res.Halted, res.Violation, res.Pipe, res.Branch,
		res.UniqueBranches, res.L1D, res.L1I, res.L2, res.DRAM,
		res.SC, eng, res.Shadow, res.SourceNotes)
}

// probeHotPath runs one REV-protected workload and measures simulator-side
// throughput: validated blocks per second and heap allocations per block.
func probeHotPath(instrs uint64, scale float64) (*hotPath, error) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		return nil, err
	}
	p = p.Scaled(scale)
	rc := core.DefaultRunConfig()
	rc.MaxInstrs = instrs
	cfg := core.DefaultConfig()
	cfg.Format = sigtable.Normal
	rc.REV = &cfg

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.Run(p.Builder(), rc)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, err
	}
	if res.Violation != nil {
		return nil, fmt.Errorf("clean workload flagged: %v", res.Violation)
	}
	blocks := res.Pipe.BBCount
	hp := &hotPath{
		Workload:    p.Name,
		Instrs:      res.Pipe.Instrs,
		Blocks:      blocks,
		WallSeconds: round3(wall),
		Mallocs:     after.Mallocs - before.Mallocs,
		MemoHits:    res.Engine.MemoHits,
		MemoMisses:  res.Engine.MemoMisses,
	}
	if wall > 0 {
		hp.BlocksPerSec = round3(float64(blocks) / wall)
	}
	if blocks > 0 {
		hp.AllocsPerBlock = round3(float64(hp.Mallocs) / float64(blocks))
	}
	return hp, nil
}

func writeJSON(path string, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "revbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "revbench: wrote %s\n", path)
}

func parseRef(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("want id=seconds, got %q", pair)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", pair, err)
		}
		out[kv[0]] = v
	}
	return out, nil
}

// parseDepths parses the -prefetchdepths list.
func parseDepths(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("want a non-negative depth, got %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty depth list")
	}
	return out, nil
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// evReport is the BENCH_evidence.json payload: best-of-N wall times for
// one REV-protected workload without and with the hash-chained evidence
// emitter attached, plus the stream's own determinism and verification
// record.
type evReport struct {
	Generated string   `json:"generated"`
	Host      hostMeta `json:"host"`
	Workload  string   `json:"workload"`
	Instrs    uint64   `json:"instrs"`
	Scale     float64  `json:"scale"`
	Rounds    int      `json:"rounds"`
	Blocks    uint64   `json:"blocks"`
	// DisabledSeconds is the no-emitter baseline; EvidenceSeconds runs
	// the same prepared workload with commits streaming through the
	// emitter ring into a byte-counting sink.
	DisabledSeconds float64 `json:"disabled_seconds"`
	EvidenceSeconds float64 `json:"evidence_seconds"`
	// OverheadPct is (evidence - disabled) / disabled * 100: the total
	// wall-clock cost, which on a single-CPU host includes the whole
	// background encoder (nowhere to overlap). EncodeSeconds is the
	// encoder's measured busy time; HotPathOverheadPct subtracts it on
	// such hosts, isolating the commit path's own cost — the <2% budget
	// from docs/EVIDENCE.md and the gated number.
	OverheadPct        float64 `json:"overhead_pct"`
	EncodeSeconds      float64 `json:"encode_seconds"`
	HotPathOverheadPct float64 `json:"hotpath_overhead_pct"`
	ThresholdPct       float64 `json:"threshold_pct"`
	WithinThreshold    bool    `json:"within_threshold"`
	// Identical reports that the evidence-enabled run produced the same
	// full result record as the baseline (evidence must never alter
	// simulated results).
	Identical bool `json:"identical"`
	// StreamBytes/BytesPerBlock size the emitted stream; Records and
	// Segments count its framing.
	StreamBytes   uint64  `json:"stream_bytes"`
	BytesPerBlock float64 `json:"bytes_per_block"`
	Records       int     `json:"records"`
	Segments      int     `json:"segments"`
	// Deterministic reports that two runs emitted byte-identical
	// streams; Verified reports that the stream replayed clean through
	// evidence.Verify against the run's own tables.
	Deterministic bool `json:"deterministic"`
	Verified      bool `json:"verified"`
	// Note flags hardware bounds on the measurement (a single-CPU host
	// serializes the background encoder with the simulation).
	Note string `json:"note,omitempty"`
}

// countWriter is the evidence sink for the timed rounds: it counts
// bytes and discards them, so the probe measures emitter cost, not
// disk.
type countWriter struct{ n uint64 }

// Write counts and discards the evidence bytes.
func (w *countWriter) Write(p []byte) (int, error) {
	w.n += uint64(len(p))
	return len(p), nil
}

// probeEvidence times one prepared workload without and with the
// evidence emitter, best-of-rounds interleaved, checks result and
// stream byte identity, and replays the stream through the offline
// verifier.
func probeEvidence(instrs uint64, scale float64, rounds int, threshold float64) (*evReport, error) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		return nil, err
	}
	p = p.Scaled(scale)
	rc := core.DefaultRunConfig()
	rc.MaxInstrs = instrs
	cfg := core.DefaultConfig()
	cfg.Format = sigtable.Normal
	rc.REV = &cfg
	prep, err := core.Prepare(p.Builder(), rc)
	if err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}

	emit := func(w *countWriter) (*core.Result, float64, evidence.Stats, error) {
		em := evidence.NewEmitter(w, evidence.Config{Binding: "bench"})
		start := time.Now()
		res, err := prep.RunWithEvidence(em)
		return res, time.Since(start).Seconds(), em.Stats(), err
	}

	// Warm up both paths once, then time in interleaved best-of-rounds
	// (the same discipline as the telemetry probe): interleaving spreads
	// thermal and scheduler drift evenly, and the minimum is the
	// least-noise estimator for a deterministic workload.
	if _, err := prep.Run(); err != nil {
		return nil, err
	}
	if _, _, _, err := emit(&countWriter{}); err != nil {
		return nil, err
	}
	var baseRes, evRes *core.Result
	var baseWall, evWall float64
	var evStats evidence.Stats
	var evBytes uint64
	for r := 0; r < rounds; r++ {
		start := time.Now()
		res, err := prep.Run()
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, err
		}
		if baseRes == nil || wall < baseWall {
			baseRes, baseWall = res, wall
		}
		w := &countWriter{}
		res, wall, st, err := emit(w)
		if err != nil {
			return nil, err
		}
		if evRes == nil || wall < evWall {
			evRes, evWall, evStats = res, wall, st
		}
		evBytes = w.n
	}
	if baseRes.Violation != nil {
		return nil, fmt.Errorf("clean workload flagged: %v", baseRes.Violation)
	}

	// Stream determinism and offline verification: two untimed runs into
	// real buffers must emit byte-identical streams, and the stream must
	// replay clean against the run's own tables.
	stream := func() ([]byte, error) {
		var buf bytes.Buffer
		em := evidence.NewEmitter(&buf, evidence.Config{Binding: "bench"})
		if _, err := prep.RunWithEvidence(em); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	s1, err := stream()
	if err != nil {
		return nil, err
	}
	s2, err := stream()
	if err != nil {
		return nil, err
	}
	sources := make(map[string]sigtable.Source, len(prep.Tables))
	for _, st := range prep.Tables {
		sources[st.Module] = st.Source()
	}
	vrep, verr := evidence.Verify(s1, evidence.VerifyConfig{Sources: sources})

	rep := &evReport{
		Generated:       time.Now().UTC().Format(time.RFC3339),
		Host:            hostInfo(),
		Workload:        p.Name,
		Instrs:          instrs,
		Scale:           scale,
		Rounds:          rounds,
		Blocks:          baseRes.Pipe.BBCount,
		DisabledSeconds: round3(baseWall),
		EvidenceSeconds: round3(evWall),
		ThresholdPct:    threshold,
		Identical:       identitySig(evRes) == identitySig(baseRes),
		StreamBytes:     evBytes,
		Deterministic:   bytes.Equal(s1, s2),
		Verified:        verr == nil && vrep.Outcome.Verdict == evidence.VerdictPass,
	}
	rep.EncodeSeconds = round3(evStats.EncodeSeconds)
	// On a single-CPU host the background encoder time-slices with the
	// simulation, so the wall delta carries its full busy time; subtract
	// the measured encoder seconds to isolate the commit path (the same
	// hardware-bound note BENCH_pipeline.json carries). With a spare CPU
	// the encoder overlaps and the wall delta is the hot-path cost.
	hot := evWall - baseWall
	if runtime.GOMAXPROCS(0) == 1 {
		hot -= evStats.EncodeSeconds
		rep.Note = "single-CPU host: background encoder serialized with the run; " +
			"overhead_pct includes its full busy time, hotpath_overhead_pct subtracts encode_seconds"
	}
	if baseWall > 0 {
		rep.OverheadPct = round3((evWall - baseWall) / baseWall * 100)
		rep.HotPathOverheadPct = round3(hot / baseWall * 100)
	}
	if rep.Blocks > 0 {
		rep.BytesPerBlock = round3(float64(evBytes) / float64(rep.Blocks))
	}
	if vrep != nil {
		rep.Records, rep.Segments = vrep.Records, vrep.Segments
	}
	rep.WithinThreshold = rep.HotPathOverheadPct <= threshold
	if !rep.Identical {
		return nil, fmt.Errorf("evidence-enabled result diverged from the baseline run")
	}
	if !rep.Deterministic {
		return nil, fmt.Errorf("evidence stream differs across identical runs")
	}
	if verr != nil {
		return nil, fmt.Errorf("emitted stream failed offline verification: %w", verr)
	}
	fmt.Printf("evidence   disabled %7.3fs  evidence %7.3fs (%+.2f%% total, %+.2f%% hot path, %.3fs encoder)  %d bytes (%.1f B/block)  identical %v  verified %v\n",
		baseWall, evWall, rep.OverheadPct, rep.HotPathOverheadPct, rep.EncodeSeconds,
		evBytes, rep.BytesPerBlock, rep.Identical, rep.Verified)
	return rep, nil
}
