package core

import (
	"fmt"
	"testing"

	"rev/internal/branch"
	"rev/internal/cfg"
	"rev/internal/cpu"
	"rev/internal/crypt"
	"rev/internal/mem"
	"rev/internal/prog"
)

// benchHookSetup builds a protected engine for loopProgram, replays the
// workload once through the pipeline to warm every structure (SC, SAG,
// memo), and returns the engine plus the dynamic BBInfo stream for direct
// Hook replay. hide=true wraps the address space so it does not advertise
// prog.CodeVersioner — the un-memoized configuration, in which every block
// is rehashed (the pre-memo hot path).
func benchHookSetup(b *testing.B, hide bool) (*Engine, []cpu.BBInfo) {
	b.Helper()
	build := builderOf(loopProgram)
	measured, err := build()
	if err != nil {
		b.Fatal(err)
	}
	hier := mem.New(mem.DefaultConfig())
	pred := branch.New(branch.DefaultConfig())
	pipe := cpu.NewPipeline(cpu.DefaultPipeConfig(), hier, pred)
	var space prog.AddressSpace = measured.Mem
	if hide {
		space = noVersionSpace{space}
	}
	mach := cpu.NewMachineOver(measured, space)

	twin, err := build()
	if err != nil {
		b.Fatal(err)
	}
	profiler, err := cfg.ProfileRun(twin, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	static := cfg.Analyze(measured, cfg.DefaultAnalyzeOptions())
	ks := crypt.NewKeyStore(crypt.DeriveKey(0x5eed, "cpu-private"))
	ecfg := DefaultConfig()
	eng := NewEngine(ecfg, space, hier, ks)
	for i, mod := range measured.Modules {
		bld := cfg.NewBuilder(mod, ecfg.Limits)
		profiler.Apply(bld)
		static.Apply(bld)
		g, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		key := crypt.DeriveKey(0x5eed, fmt.Sprintf("module-%d-%s", i, mod.Name))
		if err := eng.AddModule(g, key); err != nil {
			b.Fatal(err)
		}
	}

	var infos []cpu.BBInfo
	pipe.Hook = func(info cpu.BBInfo) (uint64, error) {
		infos = append(infos, info)
		return eng.Hook(info)
	}
	mach.SysHandler = eng.SysHandler
	pipe.Cfg.MaxBBInstrs = ecfg.Limits.MaxInstrs
	pipe.Cfg.MaxBBStores = ecfg.Limits.MaxStores

	for !mach.Halted && pipe.Stats.Instrs < 1_000_000 {
		pc, in, err := mach.Step()
		if err != nil {
			b.Fatal(err)
		}
		if err := pipe.Next(cpu.DynInstr{PC: pc, In: in, NextPC: mach.PC, MemAddr: mach.MemAddr}); err != nil {
			b.Fatal(err)
		}
	}
	if !mach.Halted || len(infos) == 0 {
		b.Fatalf("warm-up run did not complete (halted=%v, %d blocks)", mach.Halted, len(infos))
	}
	return eng, infos
}

// replay drives the engine's Hook with the captured dynamic block stream.
// The stream is closed under the delayed-return latch (it starts fresh and
// ends at HALT), so it can be replayed back to back.
func replay(b *testing.B, eng *Engine, infos []cpu.BBInfo) {
	for i := 0; i < b.N; i++ {
		if _, err := eng.Hook(infos[i%len(infos)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHookHashedMemoized measures the per-block validation cost with
// the signature memo active (the production configuration). It must run
// allocation-free: block bytes land in the engine scratch on the rare miss,
// and hits touch only the memo, SC and CHG ring.
func BenchmarkHookHashedMemoized(b *testing.B) {
	eng, infos := benchHookSetup(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	replay(b, eng, infos)
	b.StopTimer()
	if eng.Stats.MemoHits == 0 {
		b.Fatal("memo never hit")
	}
}

// BenchmarkHookHashedHit measures the same per-block path with memoization
// disabled (address space hides its CodeVersioner): every block re-reads
// its bytes and recomputes the CubeHash signature, as the engine originally
// did. The Memoized/Hit ratio is the memo's direct speedup.
func BenchmarkHookHashedHit(b *testing.B) {
	eng, infos := benchHookSetup(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	replay(b, eng, infos)
	b.StopTimer()
	if eng.Stats.MemoHits != 0 || eng.Stats.MemoMisses != 0 {
		b.Fatal("memo unexpectedly active")
	}
}
