package sigserve

import (
	"fmt"
	"sort"
)

// Consistent-hash ring (docs/DEPLOYMENT.md "The ring").
//
// The sharded control plane maps tenant namespaces onto shard owners
// with a consistent-hash ring over virtual nodes: every shard projects
// VNodes points onto a 64-bit circle, a tenant hashes to one point, and
// its replica set is the next R distinct shards clockwise. Routing is a
// pure function of (ring, tenant), so clients and servers built from
// the same node list agree without any coordination traffic.
//
// Placement additionally applies a bounded-load cap (Place): no shard
// accepts more than ceil(LoadFactor * tenants * replicas / shards)
// tenant-replicas; a tenant that would overload its walk-preferred
// shard spills to the next shard with capacity. Spilling requires
// knowing the whole tenant set, so only the serving side (which is
// configured with it) computes Place; clients route by the pure walk
// (Replicas) and learn about spilled or remapped tenants through the
// typed CodeWrongShard redirect, which names the true owner.

// RingNode is one shard in the ring: a stable identity plus the
// endpoint clients dial.
type RingNode struct {
	// ID is the shard's stable name; it seeds the shard's virtual-node
	// positions, so renaming a shard remaps its arc.
	ID string
	// Addr is the shard's serve endpoint ("host:port").
	Addr string
}

// RingConfig tunes ring construction. Zero fields take the documented
// defaults.
type RingConfig struct {
	// VNodes is how many virtual nodes each shard projects onto the
	// circle (default DefaultVNodes). More vnodes smooth the arcs at the
	// cost of a larger sorted point table.
	VNodes int
	// Replicas is R, the replica-set size per tenant (default
	// DefaultReplicas, capped at the node count).
	Replicas int
	// LoadPct is the bounded-load factor in percent: Place caps each
	// shard at ceil(LoadPct/100 * fair share). Default
	// DefaultLoadPct (125 = the classic 1.25 bound).
	LoadPct int
	// Epoch is the topology generation this ring describes. Clients and
	// servers compare epochs to detect stale topology; bump it on every
	// membership change.
	Epoch uint64
}

// Ring defaults (RingConfig).
const (
	// DefaultVNodes is the per-shard virtual-node count.
	DefaultVNodes = 64
	// DefaultReplicas is the replica-set size per tenant namespace.
	DefaultReplicas = 2
	// DefaultLoadPct is the bounded-load cap in percent of fair share.
	DefaultLoadPct = 125
	// MaxRingNodes bounds ring membership (the walk's node bitset is a
	// single word; 64 shards is far past the scale this repo measures).
	MaxRingNodes = 64
)

// ringPoint is one virtual node: its position on the circle and the
// owning shard's index into Ring.nodes.
type ringPoint struct {
	pos  uint64
	node int
}

// Ring is an immutable consistent-hash ring. Build one with NewRing;
// all methods are safe for concurrent use.
type Ring struct {
	cfg    RingConfig
	nodes  []RingNode
	points []ringPoint // sorted by pos
}

// NewRing builds a ring over the given shards. The node list is copied
// and sorted by ID, so any permutation of the same membership produces
// an identical ring. At least one node is required.
func NewRing(nodes []RingNode, cfg RingConfig) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sigserve: ring needs at least one node")
	}
	if len(nodes) > MaxRingNodes {
		return nil, fmt.Errorf("sigserve: ring supports at most %d nodes, got %d", MaxRingNodes, len(nodes))
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Replicas > len(nodes) {
		cfg.Replicas = len(nodes)
	}
	if cfg.LoadPct <= 0 {
		cfg.LoadPct = DefaultLoadPct
	} else if cfg.LoadPct < 100 {
		return nil, fmt.Errorf("sigserve: ring load factor %d%% is below fair share", cfg.LoadPct)
	}
	r := &Ring{cfg: cfg, nodes: append([]RingNode(nil), nodes...)}
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].ID < r.nodes[j].ID })
	seen := make(map[string]bool, len(r.nodes))
	for _, n := range r.nodes {
		if n.ID == "" || n.Addr == "" {
			return nil, fmt.Errorf("sigserve: ring node needs both id and addr (got id=%q addr=%q)", n.ID, n.Addr)
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("sigserve: duplicate ring node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	r.points = make([]ringPoint, 0, len(r.nodes)*cfg.VNodes)
	for ni, n := range r.nodes {
		for v := 0; v < cfg.VNodes; v++ {
			r.points = append(r.points, ringPoint{
				pos:  ringHash(fmt.Sprintf("%s#%d", n.ID, v)),
				node: ni,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// ringHash is FNV-1a 64 — stable, dependency-free, and identical on
// both sides of the wire (the same function shardFor uses for metric
// cells).
func ringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Config returns the ring's effective configuration (defaults applied).
func (r *Ring) Config() RingConfig { return r.cfg }

// Epoch returns the topology generation the ring was built with.
func (r *Ring) Epoch() uint64 { return r.cfg.Epoch }

// Nodes returns the ring's membership, sorted by ID. The slice is
// shared; callers must not mutate it.
func (r *Ring) Nodes() []RingNode { return r.nodes }

// walk returns up to want distinct node indices clockwise from the
// tenant's hash point, appending to dst.
func (r *Ring) walk(tenant string, want int, dst []int) []int {
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].pos >= ringHash(tenant)
	})
	var taken uint64 // bitset over node indices; ring membership is small
	for i := 0; len(dst) < want && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken&(1<<uint(p.node)) != 0 {
			continue
		}
		taken |= 1 << uint(p.node)
		dst = append(dst, p.node)
	}
	return dst
}

// Owner returns the tenant's walk-preferred shard — the first distinct
// node clockwise from the tenant's hash point.
func (r *Ring) Owner(tenant string) RingNode {
	idx := r.walk(tenant, 1, nil)
	return r.nodes[idx[0]]
}

// Replicas returns the tenant's replica set in preference order: the
// first R distinct shards clockwise from the tenant's hash point. This
// is the pure routing function clients use; the serving side's actual
// placement may differ for spilled tenants (see Place), which the
// CodeWrongShard redirect corrects.
func (r *Ring) Replicas(tenant string) []RingNode {
	idxs := r.walk(tenant, r.cfg.Replicas, nil)
	out := make([]RingNode, len(idxs))
	for i, ni := range idxs {
		out[i] = r.nodes[ni]
	}
	return out
}

// Place assigns every tenant its replica set under the bounded-load
// cap: tenants are walked in sorted order, each one's clockwise
// preference list is filtered through per-shard capacity
// ceil(LoadPct/100 * tenants*replicas/shards), and a tenant whose
// preferred shard is full spills to the next shard with room. The
// result is deterministic for a given (ring, tenant set) — every shard
// configured with the same inputs computes the same placement.
func (r *Ring) Place(tenants []string) map[string][]RingNode {
	sorted := append([]string(nil), tenants...)
	sort.Strings(sorted)
	slots := len(sorted) * r.cfg.Replicas
	cap_ := (r.cfg.LoadPct*slots + 100*len(r.nodes) - 1) / (100 * len(r.nodes))
	if cap_ < 1 {
		cap_ = 1
	}
	load := make([]int, len(r.nodes))
	out := make(map[string][]RingNode, len(sorted))
	for _, tn := range sorted {
		if _, dup := out[tn]; dup {
			continue
		}
		// Preference list over every node, so a spill always finds the
		// next-closest shard with capacity.
		pref := r.walk(tn, len(r.nodes), nil)
		var set []RingNode
		var chosen uint64
		for _, ni := range pref {
			if len(set) == r.cfg.Replicas {
				break
			}
			if load[ni] >= cap_ {
				continue
			}
			load[ni]++
			chosen |= 1 << uint(ni)
			set = append(set, r.nodes[ni])
		}
		// Everything at capacity (tiny rings, adversarial caps): fall
		// back to pure preference so the tenant is never unplaced.
		for _, ni := range pref {
			if len(set) == r.cfg.Replicas {
				break
			}
			if chosen&(1<<uint(ni)) != 0 {
				continue
			}
			chosen |= 1 << uint(ni)
			set = append(set, r.nodes[ni])
		}
		out[tn] = set
	}
	return out
}
