// Run arenas: reusable per-instance execution state for Prepared
// workloads.
//
// A Prepared instance run needs a cloned program image, a memory
// hierarchy, a branch predictor, an out-of-order pipeline, a functional
// machine, a REV engine over the shared tables, and (pipelined) the SPSC
// ring with its pooled block records. Before this file, every
// Prepared.Run built all of that fresh — ~one allocation per mapped page
// plus the fixed structures, per run. A runArena builds the whole set
// once and resets it in place between runs, so steady-state instance
// runs are allocation-free end to end (pinned by TestRunInstanceZeroAllocs):
//
//   - prog.Memory.ResetFrom restores the cloned image from the pristine
//     prototype without reallocating pages (extra pages a run mapped are
//     zeroed in place — indistinguishable from absent pages through
//     AddressSpace reads).
//   - Hierarchy/Predictor/Pipeline/Machine/Engine all expose Reset
//     methods returning them to their post-construction state in place
//     (caches flushed, LRU stamps and statistics zeroed, signature memo
//     and sigcache slabs invalidated, SAG registration replayed, code
//     watches re-armed so the code-version epoch sequence restarts
//     exactly as a fresh build's).
//   - The pipelined rig (ring, slots, lane pools, producer channel, and
//     the pre-bound hook closures) is cached on the parts and re-armed
//     per run (pipeline.go); the ring's sequence counters run
//     monotonically across runs while each pool Reset primes its
//     progress cursors.
//
// Determinism: a reset arena is observationally identical to a fresh
// build — byte-identical figures, verdicts, forensics, and evidence
// streams — which TestArenaReuseMatchesFresh pins, including across
// attacked and self-modifying-code runs.
//
// Two run shapes bypass the arena and keep the fresh-build path:
// PageShadowing (the shadow.Memory epoch holds cross-run promotion
// state) and telemetry-enabled runs (registry views snapshot per-run
// Stats structs on demand; reusing the structs across runs would
// double-count in the additive registry merge).
package core

import (
	"fmt"

	"rev/internal/cpu"
	"rev/internal/crypt"
	"rev/internal/isa"
	"rev/internal/prog"
)

// runArena is one reusable instance of a Prepared workload: the cloned
// program plus every per-run structure, reset in place between runs.
// An arena is owned by exactly one goroutine between acquire and
// release; the Prepared's freelist hands each concurrent caller its own.
type runArena struct {
	owner *Prepared
	p     *parts
	// measured is the arena's cloned program image, restored from the
	// owner's pristine prototype between runs.
	measured *prog.Program

	// Pre-bound installs, created once so per-run re-attachment after the
	// resets costs plain assignments, never a closure allocation.
	serialHook func(cpu.BBInfo) (uint64, error) // engine.Hook
	serialSys  func(int32, uint64)              // engine.SysHandler
	attackStep func(pc uint64, in isa.Instr)    // wraps rc.AttackHook; nil without one
}

// acquireArena pops a free arena or builds one. Builds happen on first
// use and when more runs are in flight concurrently than ever before;
// the steady state is pure reuse.
func (p *Prepared) acquireArena() (*runArena, error) {
	p.arenaMu.Lock()
	if n := len(p.arenas); n > 0 {
		a := p.arenas[n-1]
		p.arenas = p.arenas[:n-1]
		p.arenaMu.Unlock()
		return a, nil
	}
	p.arenaMu.Unlock()
	return p.newArena()
}

// releaseArena returns an arena to the freelist.
func (p *Prepared) releaseArena(a *runArena) {
	p.arenaMu.Lock()
	p.arenas = append(p.arenas, a)
	p.arenaMu.Unlock()
}

// newArena performs the fresh build the arena will afterwards reuse:
// exactly the construction sequence runInstance used before arenas, so
// run one over a new arena is literally the old fresh-build run.
func (p *Prepared) newArena() (*runArena, error) {
	rc := p.rc
	rc.Lanes, rc.Telemetry, rc.Evidence = 0, nil, nil
	measured := p.proto.Clone()
	parts := assemble(measured, rc)
	ks := crypt.NewKeyStore(crypt.DeriveKey(rc.KeySeed, "cpu-private"))
	engine := NewEngine(*rc.REV, parts.space, parts.hier, ks)
	for _, st := range p.Tables {
		if err := engine.AddSharedModule(st); err != nil {
			return nil, fmt.Errorf("core: sharing table for %s: %w", st.Module, err)
		}
	}
	parts.attach(engine, rc)
	a := &runArena{
		owner:      p,
		p:          parts,
		measured:   measured,
		serialHook: parts.pipe.Hook,
		serialSys:  engine.SysHandler,
	}
	if rc.AttackHook != nil {
		hook, mach := rc.AttackHook, parts.mach
		a.attackStep = func(pc uint64, in isa.Instr) { hook(mach, pc, in) }
	}
	return a, nil
}

// reset returns every arena structure to its post-build state, in order:
// the program image first (which also resets the code watch), then the
// microarchitectural parts, then the engine — whose Reset re-arms the
// code watches from its module sources, reproducing a fresh build's
// epoch sequence exactly.
func (a *runArena) reset() {
	p := a.p
	p.mach.Reset(a.measured)
	a.measured.Mem.ResetFrom(a.owner.proto.Mem)
	p.hier.Reset()
	p.pred.Reset()
	p.pipe.Reset()
	if p.engine != nil {
		p.engine.Reset()
	}
	p.tel = nil
}

// runInto executes one instance run over the arena, copying Output out
// of the machine backing so the caller's Result stays valid after the
// arena is reset for its next run. On error the contents of res are
// unspecified.
func (a *runArena) runInto(rc RunConfig, res *Result) error {
	a.reset()
	p := a.p
	// Re-attach after the resets cleared the hooks. Pipelined runs
	// overwrite Hook/SysHandler with the rig's pre-bound versions inside
	// runMeasured; installing the serial pair first keeps this path
	// branch-free and harmless (nothing executes in between).
	p.mach.BeforeStep = a.attackStep
	if p.engine != nil {
		p.pipe.Hook = a.serialHook
		p.mach.SysHandler = a.serialSys
	}
	outBuf := res.Output[:0]
	*res = Result{}
	if err := executeInto(p, rc, res); err != nil {
		return err
	}
	// res.Output aliases the machine's output backing, which the next run
	// over this arena will truncate and refill: copy it into the caller's
	// reusable backing. An empty output stays nil, matching the serial
	// fresh path (Output is nil until the first OUT instruction retires).
	if len(res.Output) == 0 {
		res.Output = nil
	} else {
		res.Output = append(outBuf, res.Output...)
	}
	return nil
}
