package main

import (
	"math/bits"
	"time"
)

// hdrHist is an HDR-style latency histogram: 32 sub-buckets per power of
// two, giving a fixed ~1.6% relative error across the full uint64 range
// with a flat 1920-slot array — no allocation per observation, cheap to
// merge across workers. (The telemetry package's power-of-two histogram
// is deliberately coarser; a load harness reporting p999 needs the finer
// grid.)
type hdrHist struct {
	counts [hdrSlots]uint64
	count  uint64
	sum    uint64
	max    uint64
}

const (
	hdrSubBits = 5
	hdrSub     = 1 << hdrSubBits // sub-buckets per power of two
	hdrSlots   = (64 - hdrSubBits) * hdrSub
)

// hdrIndex maps a value to its slot: exact below hdrSub, then 32
// log-spaced sub-buckets per octave.
func hdrIndex(v uint64) int {
	if v < hdrSub {
		return int(v)
	}
	top := bits.Len64(v) - 1 // MSB position, >= hdrSubBits
	shift := top - hdrSubBits
	return (top-hdrSubBits+1)*hdrSub + int((v>>shift)&(hdrSub-1))
}

// hdrValue returns a slot's representative value (midpoint of its
// range), inverting hdrIndex.
func hdrValue(idx int) uint64 {
	if idx < hdrSub {
		return uint64(idx)
	}
	group := idx / hdrSub
	sub := uint64(idx % hdrSub)
	shift := group - 1
	return (hdrSub+sub)<<shift + (uint64(1)<<shift)/2
}

func (h *hdrHist) observe(d time.Duration) {
	v := uint64(d)
	h.counts[hdrIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// merge folds another histogram into this one.
func (h *hdrHist) merge(o *hdrHist) {
	for i, n := range o.counts {
		h.counts[i] += n
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the q-quantile's representative value (0 when empty).
func (h *hdrHist) quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count-1))
	var cum uint64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		cum += n
		if rank < cum {
			v := hdrValue(i)
			if v > h.max {
				v = h.max // the top slot's midpoint can overshoot the true max
			}
			return v
		}
	}
	return h.max
}

func (h *hdrHist) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// latSummary is the JSON shape of one histogram's quantiles.
type latSummary struct {
	P50    uint64  `json:"p50_ns"`
	P90    uint64  `json:"p90_ns"`
	P99    uint64  `json:"p99_ns"`
	P999   uint64  `json:"p999_ns"`
	Max    uint64  `json:"max_ns"`
	MeanNS float64 `json:"mean_ns"`
}

func (h *hdrHist) summary() latSummary {
	return latSummary{
		P50:    h.quantile(0.50),
		P90:    h.quantile(0.90),
		P99:    h.quantile(0.99),
		P999:   h.quantile(0.999),
		Max:    h.max,
		MeanNS: h.mean(),
	}
}
