// Package cfg recovers the reference control-flow graph that REV validates
// against: the set of basic blocks of a module, their terminating
// control-flow instructions, their legal successor addresses, and — for
// blocks entered by returning from a call — the legal return-instruction
// predecessors used by REV's delayed return validation (paper Sec. V.A).
//
// # Block model
//
// REV identifies a basic block by the address of the control-flow
// instruction that terminates it, and the hardware delimits blocks
// dynamically: a block begins where the previous control transfer landed
// and ends at the next control-flow instruction (or at an artificial limit
// for very long blocks, Sec. IV.A). Statically we therefore enumerate
// blocks per *entry point*: every control-flow target, fall-through point,
// function entry and profiled computed target starts a block that extends
// to the first control-flow instruction at or after it. Two entry points
// that flow into the same terminator produce two blocks sharing an end
// address but with different hashes; the signature table discriminates them
// through its collision chains exactly as the paper describes (Sec. V.B).
//
// # Computed control flow
//
// Targets of computed jumps/calls and returns cannot be derived from the
// instruction bytes. The paper uses static analysis and profiling runs
// (Sec. IV.D); this package provides a Profiler that records computed edges
// from an instrumented functional run, plus explicit annotations.
package cfg

import (
	"fmt"
	"sort"

	"rev/internal/cpu"
	"rev/internal/isa"
	"rev/internal/prog"
)

// Limits configures the artificial splitting of long basic blocks so that
// REV's post-commit ROB and store-queue extensions cannot overflow
// (Sec. IV.A). The pipeline front end applies the same limits dynamically.
type Limits struct {
	// MaxInstrs is the maximum number of instructions per block.
	MaxInstrs int
	// MaxStores is the maximum number of stores per block.
	MaxStores int
}

// DefaultLimits mirrors the deferred-update buffering assumed in the
// evaluation: blocks are cut at 64 instructions or 16 pending stores,
// whichever comes first.
func DefaultLimits() Limits { return Limits{MaxInstrs: 64, MaxStores: 16} }

// Block is one basic block: a straight-line run of instructions from Start
// to the terminator at End (inclusive; both are virtual addresses).
type Block struct {
	Start uint64
	End   uint64
	// NumInstrs = (End-Start)/8 + 1.
	NumInstrs int
	// NumStores counts ST instructions in the block (deferred-update cost).
	NumStores int
	// Term classifies the terminating instruction. For blocks cut at an
	// artificial limit Term is the kind of the last instruction (non-CF)
	// and Artificial is true.
	Term isa.Kind
	// Artificial marks a block cut by Limits rather than by a control-flow
	// instruction; its only successor is the fall-through.
	Artificial bool
	// Succs lists the legal start addresses of successor blocks, sorted.
	// For direct branches these come from the encoding; for computed
	// branches and returns they come from profiling/annotations.
	Succs []uint64
	// RetPreds, on a block that begins at a return site (the instruction
	// after a call), lists the addresses of RET instructions that may
	// legally return here. Used by delayed return validation.
	RetPreds []uint64
}

// HasSucc reports whether addr is a legal successor of the block.
func (b *Block) HasSucc(addr uint64) bool {
	i := sort.Search(len(b.Succs), func(i int) bool { return b.Succs[i] >= addr })
	return i < len(b.Succs) && b.Succs[i] == addr
}

// HasRetPred reports whether ret is a legal returning predecessor.
func (b *Block) HasRetPred(ret uint64) bool {
	i := sort.Search(len(b.RetPreds), func(i int) bool { return b.RetPreds[i] >= ret })
	return i < len(b.RetPreds) && b.RetPreds[i] == ret
}

// EachSucc calls yield for every legal successor start address in sorted
// order, stopping early when yield returns false. It reports whether the
// iteration ran to completion. Prediction walks use it to enumerate
// candidate paths without copying the slice.
func (b *Block) EachSucc(yield func(addr uint64) bool) bool {
	for _, s := range b.Succs {
		if !yield(s) {
			return false
		}
	}
	return true
}

// Graph is the reference CFG of one module.
type Graph struct {
	Module *prog.Module
	Limits Limits
	// ByStart maps a block's start address to the block. Start addresses
	// are unique (the walk from an entry point is deterministic).
	ByStart map[uint64]*Block
	// ByEnd maps a terminator address to all blocks ending there (blocks
	// overlapping in memory share terminators).
	ByEnd map[uint64][]*Block
	// Starts is the sorted list of block start addresses.
	Starts []uint64
}

// BlockAt returns the block starting at addr, or nil when no walk from
// any known entry point begins there.
func (g *Graph) BlockAt(addr uint64) *Block { return g.ByStart[addr] }

// SynthesizeAt builds the dynamic basic block that execution entering at
// start would produce — the same walk the pipeline front end performs —
// for start addresses the static enumeration never saw (e.g. a computed
// target discovered only at run time). The returned block carries the
// statically derivable successors (direct target, fall-through); computed
// terminators get none, because synthesis has no profiling knowledge.
// The block is not retained in the graph. ok is false when start lies
// outside the module or is misaligned.
func (g *Graph) SynthesizeAt(start uint64) (Block, bool) {
	m := g.Module
	if !m.Contains(start) || (start-m.Base)%isa.WordSize != 0 {
		return Block{}, false
	}
	blk := Block{Start: start}
	pc := start
	for {
		in := m.InstrAt(pc - m.Base)
		blk.NumInstrs++
		if in.Op == isa.ST {
			blk.NumStores++
		}
		k := in.Kind()
		if k.IsControlFlow() {
			blk.End = pc
			blk.Term = k
			break
		}
		if blk.NumInstrs >= g.Limits.MaxInstrs || blk.NumStores >= g.Limits.MaxStores {
			blk.End = pc
			blk.Term = k
			blk.Artificial = true
			break
		}
		pc += isa.WordSize
		if pc > m.Limit() {
			blk.End = pc - isa.WordSize
			blk.Term = k
			blk.Artificial = true
			return blk, true // fell off the module end: no successor
		}
	}
	set := make(map[uint64]bool)
	if blk.Artificial {
		if blk.End+isa.WordSize <= m.Limit() {
			set[blk.End+isa.WordSize] = true
		}
	} else {
		in := m.InstrAt(blk.End - m.Base)
		switch blk.Term {
		case isa.KindCondBranch:
			if t, ok := in.Target(blk.End); ok {
				set[t] = true
			}
			set[blk.End+isa.WordSize] = true
		case isa.KindJump, isa.KindCall:
			if t, ok := in.Target(blk.End); ok {
				set[t] = true
			}
		}
	}
	blk.Succs = sortedKeys(set)
	return blk, true
}

// Stats summarizes the graph in the terms the paper reports (Sec. VIII).
type Stats struct {
	NumBlocks      int
	AvgSuccessors  float64
	AvgInstrs      float64
	NumComputed    int // blocks terminated by computed branches/returns
	TotalBranches  int // blocks terminated by any control-flow instruction
	ComputedShare  float64
	NumRetLandings int
}

// Stats computes summary statistics of the graph.
func (g *Graph) Stats() Stats {
	var s Stats
	var succs, instrs int
	for _, b := range g.ByStart {
		s.NumBlocks++
		succs += len(b.Succs)
		instrs += b.NumInstrs
		if !b.Artificial && b.Term.IsControlFlow() && b.Term != isa.KindHalt {
			s.TotalBranches++
			if b.Term.IsComputed() {
				s.NumComputed++
			}
		}
		if len(b.RetPreds) > 0 {
			s.NumRetLandings++
		}
	}
	if s.NumBlocks > 0 {
		s.AvgSuccessors = float64(succs) / float64(s.NumBlocks)
		s.AvgInstrs = float64(instrs) / float64(s.NumBlocks)
	}
	if s.TotalBranches > 0 {
		s.ComputedShare = float64(s.NumComputed) / float64(s.TotalBranches)
	}
	return s
}

// Builder accumulates entry points and computed-flow knowledge, then builds
// the Graph.
type Builder struct {
	mod    *prog.Module
	limits Limits
	// computedTargets maps the address of a computed CF instruction to its
	// set of legal targets.
	computedTargets map[uint64]map[uint64]bool
	// retEdges maps a return-site address (block start following a call)
	// to the set of RET instruction addresses returning there.
	retEdges map[uint64]map[uint64]bool
	// extraEntries are additional block entry points (e.g. attack-handler
	// stubs or profiled landing sites).
	extraEntries []uint64
}

// NewBuilder creates a CFG builder for a loaded module.
func NewBuilder(m *prog.Module, lim Limits) *Builder {
	return &Builder{
		mod:             m,
		limits:          lim,
		computedTargets: make(map[uint64]map[uint64]bool),
		retEdges:        make(map[uint64]map[uint64]bool),
	}
}

// AddComputedTarget registers target as legal for the computed control-flow
// instruction at pc (from static analysis, annotations, or profiling).
func (b *Builder) AddComputedTarget(pc, target uint64) {
	set := b.computedTargets[pc]
	if set == nil {
		set = make(map[uint64]bool)
		b.computedTargets[pc] = set
	}
	set[target] = true
}

// AddReturnEdge registers that the RET instruction at retPC may return to
// retSite (the instruction following some call).
func (b *Builder) AddReturnEdge(retPC, retSite uint64) {
	set := b.retEdges[retSite]
	if set == nil {
		set = make(map[uint64]bool)
		b.retEdges[retSite] = set
	}
	set[retPC] = true
	// A return target is also a legal successor of the returning block.
	b.AddComputedTarget(retPC, retSite)
}

// AddEntry registers an extra block entry point.
func (b *Builder) AddEntry(addr uint64) {
	b.extraEntries = append(b.extraEntries, addr)
}

// Build enumerates the blocks and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	m := b.mod
	if m.Base == 0 && m.Name != "" && len(m.Code) > 0 {
		// Base 0 means not loaded; addresses below would be offsets.
		return nil, fmt.Errorf("cfg: module %q not loaded (Base == 0)", m.Name)
	}
	entries := map[uint64]bool{m.EntryAddr(): true}
	for _, s := range m.Symbols {
		entries[m.Base+s.Addr] = true
	}
	for _, e := range b.extraEntries {
		entries[e] = true
	}
	// Scan every instruction once to find direct targets and fall-throughs.
	n := m.NumInstrs()
	for i := 0; i < n; i++ {
		pc := m.Base + uint64(i)*isa.WordSize
		in := m.InstrAt(uint64(i) * isa.WordSize)
		k := in.Kind()
		if !k.IsControlFlow() {
			continue
		}
		if t, ok := in.Target(pc); ok {
			if !m.Contains(t) {
				// Cross-module direct target: still an entry of *that*
				// module's graph, not ours; skip here.
			} else {
				entries[t] = true
			}
		}
		// The instruction after any CF instruction starts a block (branch
		// fall-through or call-return site).
		if k != isa.KindHalt && i+1 < n {
			entries[pc+isa.WordSize] = true
		}
	}
	// Computed targets within this module are entries too.
	for _, set := range b.computedTargets {
		for t := range set {
			if m.Contains(t) {
				entries[t] = true
			}
		}
	}
	for site := range b.retEdges {
		if m.Contains(site) {
			entries[site] = true
		}
	}

	g := &Graph{
		Module:  m,
		Limits:  b.limits,
		ByStart: make(map[uint64]*Block),
		ByEnd:   make(map[uint64][]*Block),
	}
	// Walk from each entry. Artificial splits create new entry points,
	// processed with a worklist.
	work := make([]uint64, 0, len(entries))
	for e := range entries {
		work = append(work, e)
	}
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
	for len(work) > 0 {
		start := work[0]
		work = work[1:]
		if _, done := g.ByStart[start]; done {
			continue
		}
		blk, next, err := b.walk(start)
		if err != nil {
			return nil, err
		}
		g.ByStart[start] = blk
		g.ByEnd[blk.End] = append(g.ByEnd[blk.End], blk)
		if next != 0 {
			if _, done := g.ByStart[next]; !done {
				work = append(work, next)
			}
		}
	}
	b.attachEdges(g)
	g.Starts = make([]uint64, 0, len(g.ByStart))
	for s := range g.ByStart {
		g.Starts = append(g.Starts, s)
	}
	sort.Slice(g.Starts, func(i, j int) bool { return g.Starts[i] < g.Starts[j] })
	return g, nil
}

// walk builds the block starting at start. It returns the block and, for
// artificially split blocks, the follow-on entry point (0 otherwise).
func (b *Builder) walk(start uint64) (*Block, uint64, error) {
	m := b.mod
	if !m.Contains(start) || (start-m.Base)%isa.WordSize != 0 {
		return nil, 0, fmt.Errorf("cfg: entry %#x outside module %q or misaligned", start, m.Name)
	}
	blk := &Block{Start: start}
	pc := start
	for {
		in := m.InstrAt(pc - m.Base)
		blk.NumInstrs++
		if in.Op == isa.ST {
			blk.NumStores++
		}
		k := in.Kind()
		if k.IsControlFlow() {
			blk.End = pc
			blk.Term = k
			return blk, 0, nil
		}
		if blk.NumInstrs >= b.limits.MaxInstrs || blk.NumStores >= b.limits.MaxStores {
			blk.End = pc
			blk.Term = k
			blk.Artificial = true
			return blk, pc + isa.WordSize, nil
		}
		pc += isa.WordSize
		if pc > m.Limit() {
			// Fell off the end of the module without a terminator; treat
			// as an artificial block with no successor.
			blk.End = pc - isa.WordSize
			blk.Term = k
			blk.Artificial = true
			return blk, 0, nil
		}
	}
}

// attachEdges fills Succs and RetPreds for every block.
func (b *Builder) attachEdges(g *Graph) {
	for _, blk := range g.ByStart {
		set := make(map[uint64]bool)
		if blk.Artificial {
			if blk.End+isa.WordSize <= b.mod.Limit() {
				set[blk.End+isa.WordSize] = true
			}
		} else {
			in := b.mod.InstrAt(blk.End - b.mod.Base)
			switch blk.Term {
			case isa.KindCondBranch:
				if t, ok := in.Target(blk.End); ok {
					set[t] = true
				}
				set[blk.End+isa.WordSize] = true
			case isa.KindJump, isa.KindCall:
				if t, ok := in.Target(blk.End); ok {
					set[t] = true
				}
			case isa.KindRet, isa.KindIJump, isa.KindICall:
				for t := range b.computedTargets[blk.End] {
					set[t] = true
				}
			case isa.KindHalt:
				// no successors
			}
		}
		blk.Succs = sortedKeys(set)
		if preds, ok := b.retEdges[blk.Start]; ok {
			blk.RetPreds = sortedKeys(preds)
		}
	}
}

func sortedKeys(set map[uint64]bool) []uint64 {
	if len(set) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Profiler records computed control-flow edges from an instrumented run,
// standing in for the paper's profiling runs (Sec. IV.D). Attach to a
// Machine, run a representative workload, then Apply to one or more
// Builders.
type Profiler struct {
	// ComputedEdges maps computed-CF pc -> target set.
	ComputedEdges map[uint64]map[uint64]bool
	// ReturnEdges maps return-site -> RET pc set.
	ReturnEdges map[uint64]map[uint64]bool

	prevPC   uint64
	prevKind isa.Kind
	prevCF   bool
	armed    bool
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		ComputedEdges: make(map[uint64]map[uint64]bool),
		ReturnEdges:   make(map[uint64]map[uint64]bool),
	}
}

// Attach hooks the profiler into a machine's BeforeStep. The edge from a
// computed CF instruction is observed at the *next* step, when the landing
// PC is known.
func (pr *Profiler) Attach(m *cpu.Machine) {
	m.BeforeStep = func(pc uint64, in isa.Instr) {
		if pr.armed && pr.prevCF {
			pr.record(pr.prevPC, pr.prevKind, pc)
		}
		k := in.Kind()
		pr.prevPC = pc
		pr.prevKind = k
		pr.prevCF = k.IsComputed()
		pr.armed = true
	}
}

func (pr *Profiler) record(src uint64, kind isa.Kind, dst uint64) {
	set := pr.ComputedEdges[src]
	if set == nil {
		set = make(map[uint64]bool)
		pr.ComputedEdges[src] = set
	}
	set[dst] = true
	if kind == isa.KindRet {
		rs := pr.ReturnEdges[dst]
		if rs == nil {
			rs = make(map[uint64]bool)
			pr.ReturnEdges[dst] = rs
		}
		rs[src] = true
	}
}

// Apply transfers all recorded edges into a builder.
func (pr *Profiler) Apply(b *Builder) {
	for src, set := range pr.ComputedEdges {
		for dst := range set {
			b.AddComputedTarget(src, dst)
		}
	}
	for site, rets := range pr.ReturnEdges {
		for ret := range rets {
			b.AddReturnEdge(ret, site)
		}
	}
}

// ProfileRun is a convenience: build a machine over p, profile maxInstrs
// instructions (or to HALT), and return the profiler.
func ProfileRun(p *prog.Program, maxInstrs uint64) (*Profiler, error) {
	m := cpu.NewMachine(p)
	pr := NewProfiler()
	pr.Attach(m)
	if _, err := m.Run(maxInstrs); err != nil {
		return nil, err
	}
	return pr, nil
}

// ClassicStats reports statistics over the classic (partitioned) basic
// blocks: maximal straight-line runs delimited by leaders and terminators,
// with no overlap. These are the numbers compilers and the paper's Sec.
// VIII report; the dynamic-entry model used for validation enumerates
// overlapping blocks and therefore counts longer, partially shared spans.
func (g *Graph) ClassicStats() Stats {
	var s Stats
	var instrs, succs int
	for i, start := range g.Starts {
		blk := g.ByStart[start]
		end := blk.End
		if i+1 < len(g.Starts) && g.Starts[i+1] <= end {
			end = g.Starts[i+1] - 8
		}
		s.NumBlocks++
		instrs += int(end-start)/8 + 1
		if end == blk.End {
			// The classic block keeps the real terminator and successors.
			succs += len(blk.Succs)
			if !blk.Artificial && blk.Term.IsControlFlow() && blk.Term != isa.KindHalt {
				s.TotalBranches++
				if blk.Term.IsComputed() {
					s.NumComputed++
				}
			}
		} else {
			succs++ // fall-through into the next leader
		}
		if len(blk.RetPreds) > 0 {
			s.NumRetLandings++
		}
	}
	if s.NumBlocks > 0 {
		s.AvgInstrs = float64(instrs) / float64(s.NumBlocks)
		s.AvgSuccessors = float64(succs) / float64(s.NumBlocks)
	}
	if s.TotalBranches > 0 {
		s.ComputedShare = float64(s.NumComputed) / float64(s.TotalBranches)
	}
	return s
}
