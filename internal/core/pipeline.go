// Intra-run pipelined validation: overlap the functional machine, CHG
// hashing, and the cycle-level timing model of ONE simulated execution
// across goroutines, the way the paper overlaps the H=16-cycle CHG with
// the S=16 fetch→commit stages so validation hides under the pipeline.
//
// Topology (docs/ARCHITECTURE.md has the diagram):
//
//	producer (functional cpu.Machine)
//	    │  committed-BB records: DynInstrs + code bytes + epoch
//	    ▼  bounded lock-free SPSC ring (chash.SPSC)
//	K async CHG hash lanes (chash.LanePool)
//	    │  Sig/CodeSig + done flag, sharded per-lane signature memo
//	    ▼  reorder buffer = in-order ring retire (done-gated)
//	consumer (cpu.Pipeline timing + Engine validation, program order)
//
// Determinism: the consumer feeds the timing model the exact committed
// instruction stream of the serial loop, in program order, with signature
// *values* identical to serial recomputation (same bytes, same function).
// Simulated cycle counts, SC behaviour, and attack verdicts are therefore
// byte-identical to the serial engine at any lane count; only the
// simulator-internal memo hit/miss counters may differ (the memo is
// sharded per lane). Enforced by TestPipelinedMatchesSerial.
//
// Safety: the producer owns the functional machine and the simulated
// address space; the consumer owns the timing structures and the engine;
// lanes read only code bytes the producer copied into pooled ring slots
// before publishing. Signature tables are immutable decrypted snapshots
// (the Prepare path), so validation never reads simulated memory. On an
// epoch change (self-modifying code), the producer drains the ring before
// publishing under the new epoch — the epoch fence — so lanes never hold
// in-flight work from two code versions.
package core

import (
	"fmt"
	"runtime"

	"rev/internal/chash"
	"rev/internal/cpu"
	"rev/internal/forensics"
	"rev/internal/isa"
	"rev/internal/sigtable"
)

// AutoLanes sizes the intra-run pipeline for this host: 0 (serial inline
// loop — the pipeline is pure overhead without a second CPU) when
// GOMAXPROCS is 1, otherwise GOMAXPROCS-1 hash lanes capped at 4 (the
// producer and consumer occupy the remaining parallelism; beyond 4 lanes
// the hash work is already fully hidden).
func AutoLanes() int {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 {
		return 0
	}
	k := p - 1
	if k > 4 {
		k = 4
	}
	return k
}

// resolveLanes maps a RunConfig.Lanes request to an effective lane count:
// negative auto-sizes from GOMAXPROCS, 0 stays serial, n >= 1 is honored
// as requested.
func resolveLanes(n int) int {
	if n < 0 {
		return AutoLanes()
	}
	return n
}

// pipeRingSlots bounds producer run-ahead (and, on a violation, how far
// the functional machine can have advanced past the verdict).
const pipeRingSlots = 256

// DefaultPublishBatch is the publish/retire batch used when
// RunConfig.Batch is 0: deep enough to amortize the per-block atomic
// release-stores across cores, shallow enough that the consumer's verdict
// never trails the producer by a meaningful fraction of the ring.
const DefaultPublishBatch = 16

// resolveBatch maps a RunConfig.Batch request to an effective batch:
// <= 0 selects the default; the ceiling keeps at least half the ring
// circulating so producer, lanes, and consumer always overlap.
func resolveBatch(n int) int {
	if n <= 0 {
		n = DefaultPublishBatch
	}
	if n > pipeRingSlots/2 {
		n = pipeRingSlots / 2
	}
	return n
}

// revEvent is one intercepted SYS call, replayed into the engine by the
// consumer at the event's program-order position.
type revEvent struct {
	service int32
	arg     uint64
}

// pipeSlot is one pooled ring record: a committed dynamic basic block
// (or the final partial block / a decode fault) plus everything the
// consumer needs to retire it deterministically. All backing storage is
// allocated once when the ring is built and reused every lap.
type pipeSlot struct {
	job    chash.BlockJob
	instrs []cpu.DynInstr
	events []revEvent
	// outLen/halted snapshot the machine's observable state right after
	// the block's last instruction executed, so a run that aborts at this
	// block reports exactly the serial loop's Output and Halted.
	outLen int
	halted bool
	// complete marks a true basic block (terminator reached); the final
	// record of a budget-capped run may be a partial block that the
	// timing model will not end (no hook fires).
	complete bool
	// fail carries a machine decode fault (illegal opcode); instrs holds
	// the block's instructions before the fault, failPC the faulting pc.
	fail   error
	failPC uint64

	codeBuf []byte // pooled backing for job.Code
}

// pipeRun is the pipelined executor's rig: the SPSC ring, the pooled
// block records, and the lane pools over them. It is built once per parts
// (newPipeRun) and re-armed per execution (rearm), so the run-arena path
// reuses every allocation — ring, slots, code buffers, lane memos, the
// producer's exit channel, and the pre-bound hook/goroutine closures.
type pipeRun struct {
	parts *parts
	rc    RunConfig

	ring  *chash.SPSC
	slots []pipeSlot
	jobs  []*chash.BlockJob
	pool  *chash.LanePool
	// pools caches one LanePool per requested lane count; the pools share
	// the ring, the jobs, and (via Reset) the monotonic progress protocol.
	pools map[int]*chash.LanePool

	// stop is set by the consumer on an abort (violation or internal
	// error); producer and lanes exit at their next wait.
	stop chash.StopFlag

	// batch is the resolved publish/retire stride (resolveBatch).
	batch int

	// Producer-owned state.
	cur         *pipeSlot // slot being filled
	pending     int       // finished records not yet published (cur excluded)
	prodEnabled bool      // functional REV-enable state (SYS-tracked)
	lastEpoch   uint64
	laneGate    uint64 // cached LanePool.MinProgress (slot-reuse gate)
	maxBB       int
	maxStores   int

	// Consumer-owned state.
	curRetire *pipeSlot // record whose instructions are being fed
	finalOut  int
	finalHalt bool

	prodErr chan error // producer's exit status (always one send)

	// Pre-bound method values, created once so re-armed runs install hooks
	// and spawn the producer without allocating closures.
	hookFn    func(cpu.BBInfo) (uint64, error)
	sysFn     func(int32, uint64)
	produceFn func()
}

// newPipeRun builds the reusable rig for one parts: ring, pooled slots,
// and the pre-bound closures. Lane pools attach lazily via poolFor.
func newPipeRun(p *parts) *pipeRun {
	x := &pipeRun{
		parts:     p,
		ring:      chash.NewSPSC(pipeRingSlots),
		pools:     make(map[int]*chash.LanePool),
		maxBB:     p.pipe.Cfg.MaxBBInstrs,
		maxStores: p.pipe.Cfg.MaxBBStores,
		prodErr:   make(chan error, 1),
	}
	x.slots = make([]pipeSlot, x.ring.Cap())
	x.jobs = make([]*chash.BlockJob, x.ring.Cap())
	for i := range x.slots {
		s := &x.slots[i]
		s.instrs = make([]cpu.DynInstr, 0, x.maxBB)
		s.codeBuf = make([]byte, x.maxBB*isa.WordSize)
		x.jobs[i] = &s.job
	}
	x.hookFn = x.retireHook
	x.sysFn = x.sysEvent
	x.produceFn = x.produce
	return x
}

// poolFor returns the cached LanePool for a lane count, building it on
// first use. Callers must Reset the pool before Start: a pool created
// after the ring has advanced needs its progress cursors primed at the
// ring's current released count.
func (x *pipeRun) poolFor(lanes int) *chash.LanePool {
	if p, ok := x.pools[lanes]; ok {
		return p
	}
	p := chash.NewLanePool(x.ring, x.jobs, lanes, 0, forensics.CodeSig)
	x.pools[lanes] = p
	return p
}

// rearm readies the rig for one execution: per-run cursors cleared, the
// stop latch lowered, and the selected (already Reset) pool installed.
// The ring's sequence counters are monotonic across runs; only the
// producer's cached lane gate restarts, at the ring's released count.
func (x *pipeRun) rearm(rc RunConfig, pool *chash.LanePool) {
	x.rc = rc
	x.batch = resolveBatch(rc.Batch)
	x.pool = pool
	x.stop.Reset()
	x.cur, x.curRetire = nil, nil
	x.pending = 0
	x.prodEnabled = true
	x.lastEpoch = 0
	x.laneGate = x.ring.Released()
	x.finalOut, x.finalHalt = 0, false
}

// retireHook is the consumer-side validation hook: it validates with the
// lane-computed signatures of the record being retired, cross-checking
// block identity so a front-end/producer split divergence can never
// validate the wrong signature silently.
func (x *pipeRun) retireHook(info cpu.BBInfo) (uint64, error) {
	s := x.curRetire
	if s == nil || !s.complete || info.Start != s.job.Start || info.End != s.job.End {
		return 0, fmt.Errorf("core: pipelined retire desynchronized at block [%#x,%#x]", info.Start, info.End)
	}
	return x.parts.engine.HookPrecomputed(info, &s.job)
}

// sysEvent runs on the producer (functional) goroutine: SYS calls mutate
// engine state read at validation time, so they are recorded in the block
// record and replayed in program order on the consumer.
func (x *pipeRun) sysEvent(service int32, arg uint64) {
	if service == isa.SysREVEnable {
		x.prodEnabled = arg != 0
	}
	if x.cur != nil {
		x.cur.events = append(x.cur.events, revEvent{service: service, arg: arg})
	}
}

// executePipelined drives the measured run with the intra-run pipeline.
// Callers guarantee: lanes >= 1, and when an engine is attached its
// signature tables are immutable snapshots (the Prepare path) — the
// consumer must never read simulated memory while the producer runs.
// The rig is cached on parts, so repeated executions over the same parts
// (the run-arena path) reuse every pipeline allocation.
func executePipelined(p *parts, rc RunConfig, lanes int, res *Result) error {
	x := p.rig
	if x == nil {
		x = newPipeRun(p)
		p.rig = x
	}
	pool := x.poolFor(lanes)
	// Reset before every run: wipes the per-lane memo shards (epoch
	// counters restart per run) and primes the progress cursors at the
	// ring's current released count (monotonic across arena runs).
	pool.Reset()
	x.rearm(rc, pool)
	pool.SetStride(x.batch)
	p.tel.initPipeline(lanes)
	if p.tel != nil && p.tel.lanes != nil {
		pool.SetObserver(p.tel.lanes)
	} else {
		pool.SetObserver(nil)
	}
	return x.runMeasured(res)
}

// runMeasured executes one re-armed pipelined run to completion, writing
// the figures into res.
func (x *pipeRun) runMeasured(res *Result) error {
	p := x.parts
	mach, pipe, engine := p.mach, p.pipe, p.engine
	if x.rc.AttackHook != nil && mach.BeforeStep == nil {
		// The arena path pre-binds this closure once (arena.go); only
		// fresh builds reach this install.
		rc := x.rc
		mach.BeforeStep = func(pc uint64, in isa.Instr) { rc.AttackHook(mach, pc, in) }
	}
	if p.shadowMem != nil {
		p.shadowMem.Begin()
	}
	// A run that publishes zero records (machine already halted, zero
	// budget) must still report the machine's observable state.
	x.finalOut, x.finalHalt = len(mach.Output), mach.Halted

	if engine != nil {
		pipe.Hook = x.hookFn
		mach.SysHandler = x.sysFn
		engine.deferForensics = true
		if engine.cv != nil {
			x.lastEpoch = engine.cv.CodeVersion()
		}
	}

	x.pool.Start()
	go x.produceFn()
	vio, err := x.consume()

	// Tear down: wake and join the producer and lanes, whatever state the
	// run ended in. After the joins this goroutine owns everything again.
	x.stop.Raise()
	perr := <-x.prodErr
	x.pool.Abort()
	x.pool.Close()
	x.pool.Join()
	// Leave the ring quiescent (tail == head): an aborted run strands
	// published-but-unretired records, and the arena reuse path restarts
	// lanes against the same monotonic counters. The producer balanced its
	// claims before exiting, so draining releases every published record.
	for !x.ring.Drained() {
		x.ring.Release()
	}
	if err != nil {
		return err
	}
	_ = perr // producer faults surface through ring records, in order

	if engine != nil {
		engine.MergeLaneMemoStats(x.pool.MemoCounters())
		engine.deferForensics = false
		if vio != nil && engine.pendingCapture {
			// Deferred capture: memory is quiescent now. The producer may
			// have run ahead of the verdict by up to the ring depth, so
			// evidence reflects at most that much extra execution.
			engine.pendingCapture = false
			engine.Log.Capture(vio.Reason.String(), vio.BBStart, vio.BBEnd, vio.Target, engine.Mem)
		}
	}

	x.assembleInto(res, vio)
	return nil
}

// produce runs the functional machine ahead of the timing model,
// publishing committed-BB records. It mirrors the serial loop in
// sim.go:execute and the front end's block-split rule in cpu.Pipeline
// exactly: same instruction budget, same boundaries, same byte capture
// point (after the block's last instruction executed, which is when the
// serial hook would read them).
func (x *pipeRun) produce() {
	mach := x.parts.mach
	engine := x.parts.engine
	tel := x.parts.tel
	var produced uint64
	var pb chash.Backoff
	bbInstrs, bbStores := 0, 0

	// flush publishes every finished-but-unpublished record in one
	// release-store. Called when the batch fills, before any wait on the
	// consumer (it cannot retire what it cannot see), at epoch fences, and
	// at every producer exit path — a record is never stranded unpublished.
	flush := func() {
		if x.pending == 0 {
			return
		}
		n := x.pending
		x.pending = 0
		x.ring.PublishN(n)
		if tel != nil {
			tel.publishSample(x.ring.Published()-x.ring.Released(), n)
		}
	}

	finish := func(complete bool) bool {
		s := x.cur
		s.complete = complete
		s.outLen = len(mach.Output)
		s.halted = mach.Halted
		if complete {
			start := s.instrs[0].PC
			end := s.instrs[len(s.instrs)-1].PC
			j := &s.job
			j.Start, j.End = start, end
			j.Lane = chash.LaneFor(start, end, x.pool.Lanes())
			j.NeedHash = false
			j.NeedCode = false
			j.MemoOK = false
			if engine != nil && x.prodEnabled && engine.Cfg.Format != sigtable.CFIOnly {
				j.NeedHash = true
				j.NeedCode = engine.Cfg.Blacklist != nil
				// Capture the bytes the serial hook would read at this
				// exact program point; lanes never touch live memory.
				j.Code = s.codeBuf[:len(s.instrs)*isa.WordSize]
				engine.Mem.ReadBytes(start, j.Code)
				if engine.cv != nil {
					j.Epoch = engine.cv.CodeVersion()
					j.MemoOK = true
					// Epoch fence: publish the old-epoch batch, then drain
					// every in-flight record before this block becomes
					// visible under the new code version, so lanes (and
					// their memo shards) are quiescent across
					// self-modifying-code boundaries. This record joins the
					// new epoch's first batch.
					if j.Epoch != x.lastEpoch {
						flush()
						if tel != nil {
							tel.epochFenceBegin()
						}
						for !x.ring.Drained() {
							if x.stop.Raised() {
								// Abandoned run: publish this record anyway so
								// the ring's claim accounting stays balanced;
								// nothing downstream retires it.
								x.cur = nil
								x.pending++
								flush()
								x.prodErr <- nil
								return false
							}
							pb.Wait()
						}
						pb.Reset()
						x.lastEpoch = j.Epoch
						if tel != nil {
							tel.epochFenceEnd(j.Epoch)
						}
					}
				}
			}
		}
		x.cur = nil
		x.pending++
		// Publish when the batch fills, or eagerly whenever the downstream
		// stages have run dry — batching amortizes synchronization under
		// backlog without ever making an idle consumer wait on a partial
		// batch.
		if x.pending >= x.batch || x.ring.Drained() {
			flush()
		}
		return true
	}

	for !mach.Halted && produced < x.rc.MaxInstrs {
		if x.stop.Raised() {
			break
		}
		if x.cur == nil {
			// Claim (and reset) the next pooled slot before stepping into
			// a new block, so SYS events always have a record to land in.
			// Claim exactly once, then gate: retrying TryAcquire after a
			// veto would claim a fresh sequence each lap and skew the
			// slot/publish accounting.
			size := uint64(x.ring.Cap())
			var seq uint64
			for {
				s, ok := x.ring.TryAcquire()
				if !ok {
					// Ring full with records still unpublished: the consumer
					// can only free slots it can see, so flush first or this
					// wait deadlocks.
					flush()
					if x.stop.Raised() {
						x.prodErr <- nil
						return
					}
					pb.Wait()
					continue
				}
				seq = s
				break
			}
			for seq >= size && x.laneGate <= seq-size {
				// The consumer released the slot's previous record, but a
				// trailing lane may still be scanning it; wait until every
				// lane's progress passed the old sequence number.
				x.laneGate = x.pool.MinProgress()
				if x.laneGate > seq-size {
					break
				}
				if x.stop.Raised() {
					x.ring.Unclaim()
					flush()
					x.prodErr <- nil
					return
				}
				pb.Wait()
			}
			{
				s := &x.slots[x.ring.SlotOf(seq)]
				// Field-wise reset: BlockJob embeds an atomic and must
				// not be copied; all backing storage is reused in place.
				j := &s.job
				j.ResetDone()
				j.Start, j.End, j.Epoch, j.Lane = 0, 0, 0, 0
				j.NeedHash, j.NeedCode, j.MemoOK = false, false, false
				j.Code = nil
				s.instrs = s.instrs[:0]
				s.events = s.events[:0]
				s.fail = nil
				s.complete = false
				x.cur = s
			}
			pb.Reset()
			bbInstrs, bbStores = 0, 0
		}
		pc, in, err := mach.Step()
		if err != nil {
			// Decode fault: publish it as the stream's final record; the
			// consumer surfaces it at the exact serial program point.
			x.cur.fail, x.cur.failPC = err, pc
			finish(false)
			flush()
			x.prodErr <- err
			x.pool.Close()
			return
		}
		produced++
		x.cur.instrs = append(x.cur.instrs, cpu.DynInstr{PC: pc, In: in, NextPC: mach.PC, MemAddr: mach.MemAddr})
		bbInstrs++
		if in.Kind() == isa.KindStore {
			bbStores++
		}
		// Front-end block-split rule (must mirror cpu.Pipeline.Next).
		if in.Kind().IsControlFlow() || bbInstrs >= x.maxBB || bbStores >= x.maxStores {
			if !finish(true) {
				return
			}
		}
	}
	if x.cur != nil {
		if len(x.cur.instrs) > 0 {
			// Budget exhausted mid-block: ship the partial tail; the
			// timing model will not see a terminator, so no hook fires —
			// exactly the serial loop's behaviour.
			finish(false)
		} else {
			x.cur = nil
			x.ring.Unclaim() // claimed but unused slot: never published
		}
	}
	flush()
	x.prodErr <- nil
	x.pool.Close()
}

// consume retires records in program order: the reorder-buffer step. For
// each record it waits for the record's lane to finish (done-gated),
// replays SYS events, and feeds the timing model — which fires the
// validation hook at the terminator with the lane's precomputed
// signature.
func (x *pipeRun) consume() (*Violation, error) {
	pipe := x.parts.pipe
	engine := x.parts.engine
	tel := x.parts.tel
	var b chash.Backoff
	// The consumer walks its own cursor ahead of the released count and
	// frees retired slots in batch-sized strides: one release-store per
	// batch instead of per block. Every exit path (and every idle wait)
	// flushes first, so the producer is never starved behind slots that are
	// logically retired but not yet visible as free.
	crt := x.ring.Released()
	unreleased := 0
	flushRel := func() {
		if unreleased > 0 {
			x.ring.ReleaseN(unreleased)
			unreleased = 0
		}
	}
	for {
		if crt >= x.ring.Published() {
			flushRel()
			if x.pool.Closed() && x.ring.Drained() {
				return nil, nil
			}
			b.Wait()
			continue
		}
		b.Reset()
		s := &x.slots[x.ring.SlotOf(crt)]
		// Wait for the record's lane before touching it (and, crucially,
		// before releasing its slot back to the producer): the done flag is
		// the lane's release-store over the whole job.
		if !s.job.IsDone() {
			if tel != nil {
				tel.laneWaitBegin()
			}
			for !s.job.IsDone() {
				b.Wait()
			}
			if tel != nil {
				tel.laneWaitEnd(s.job.Lane)
			}
		}
		b.Reset()
		for _, ev := range s.events {
			if engine != nil {
				engine.SysHandler(ev.service, ev.arg)
			}
		}
		x.curRetire = s
		for i := range s.instrs {
			if err := pipe.Next(s.instrs[i]); err != nil {
				x.curRetire = nil
				x.finalOut, x.finalHalt = s.outLen, s.halted
				crt++
				unreleased++
				flushRel()
				if v, ok := err.(*Violation); ok {
					return v, nil
				}
				return nil, err
			}
		}
		x.curRetire = nil
		x.finalOut, x.finalHalt = s.outLen, s.halted
		// Copy the failure before the release below makes the slot
		// reclaimable: the producer may rewrite it the instant it is freed.
		fail, failPC := s.fail, s.failPC
		crt++
		unreleased++
		if unreleased >= x.batch {
			flushRel()
		}
		if fail != nil {
			flushRel()
			// Illegal opcode: the serial loop fed the block's pre-fault
			// instructions (just replayed above) and then faulted at decode.
			// With REV the block containing the illegal bytes can never
			// validate either; without, surface the machine error (sim.go
			// keeps the same policy serially).
			if engine != nil {
				return &Violation{Reason: ViolationHash, BBStart: failPC, BBEnd: failPC, Target: failPC}, nil
			}
			return nil, fail
		}
	}
}

// assembleInto fills the Result after producer and lanes joined,
// mirroring sim.go:executeMeasured. Output and Halted come from the last
// retired record's snapshot, so producer run-ahead past a violation is
// invisible.
func (x *pipeRun) assembleInto(res *Result, vio *Violation) {
	p := x.parts
	res.Pipe = p.pipe.Stats
	res.Branch = p.pred.Stats
	res.UniqueBranches = p.pipe.UniqueBranches()
	res.L1D = p.hier.L1D.Stats
	res.L1I = p.hier.L1I.Stats
	res.L2 = p.hier.L2.Stats
	res.DRAM = p.hier.DRAM.Stats
	res.Output = p.mach.Output[:x.finalOut]
	if x.finalOut == 0 {
		// The serial loop's Output is nil until the first OUT retires; the
		// producer may have run ahead and appended past the verdict, so
		// restore the exact serial value for an empty prefix.
		res.Output = nil
	}
	res.Halted = x.finalHalt
	res.Violation = vio
	if p.shadowMem != nil {
		if vio == nil {
			p.shadowMem.Commit()
		} else {
			p.shadowMem.Abort()
		}
		res.Shadow = p.shadowMem.Stats
	}
	if p.engine != nil {
		engine := p.engine
		res.Engine = engine.Stats
		res.Tables = engine.Tables
		res.Forensics = engine.Log
		res.SourceNotes = engine.SourceNotes()
		s := engine.SC.Stats
		res.SC = SCView{
			Probes:         s.Probes,
			Hits:           s.Hits,
			PartialMisses:  s.PartialMisses,
			CompleteMisses: s.CompleteMisses,
			Misses:         s.Misses(),
			MissRate:       s.MissRate(),
		}
	}
}
