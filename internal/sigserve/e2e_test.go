package sigserve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rev/internal/core"
	"rev/internal/sigtable"
)

// resultSig renders the determinism-contract fields of a Result,
// including SourceNotes: a healthy remote run must match the local run
// byte for byte, annotations included (nil on both sides).
func resultSig(res *core.Result) string {
	eng := res.Engine
	eng.MemoHits, eng.MemoMisses = 0, 0
	return fmt.Sprintf("%v|%v|%v|%+v|%+v|%d|%+v|%+v|%+v|%+v|%+v|%+v|%+v",
		res.Output, res.Halted, res.Violation, res.Pipe, res.Branch,
		res.UniqueBranches, res.L1D, res.L1I, res.L2, res.DRAM,
		res.SC, eng, res.SourceNotes)
}

// TestRemoteRunByteIdentity is the acceptance check: a run validating
// against a revserved endpoint — in snapshot mode and in per-entry
// lookup mode — produces byte-identical verdicts and figures to the
// in-process snapshot path.
func TestRemoteRunByteIdentity(t *testing.T) {
	f := fixture(t)
	local, err := f.prep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if local.Violation != nil {
		t.Fatalf("clean workload flagged locally: %v", local.Violation)
	}
	want := resultSig(local)

	_, addr := startServer(t)
	for _, lookupMode := range []bool{false, true} {
		name := "snapshot"
		if lookupMode {
			name = "lookup"
		}
		t.Run(name, func(t *testing.T) {
			c := newTestClient(t, ClientConfig{Addr: addr, LookupMode: lookupMode})
			prep, err := core.PrepareRemote(f.prof.Builder(), f.rc, c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prep.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.SourceNotes != nil {
				t.Fatalf("healthy remote run carries source notes: %+v", res.SourceNotes)
			}
			if got := resultSig(res); got != want {
				t.Fatalf("remote %s run diverged from local:\n got %s\nwant %s", name, got, want)
			}
		})
	}
}

// TestRemoteRunDegradesOnServerDeath kills the server mid-run (the
// fault injector drops every connection after N requests): the run must
// complete with verdicts identical to the local baseline — served from
// the client's cached snapshot — and carry an explicit degradation note.
// A transport fault must never become a violation or a silent pass.
func TestRemoteRunDegradesOnServerDeath(t *testing.T) {
	f := fixture(t)
	local, err := f.prep.Run()
	if err != nil {
		t.Fatal(err)
	}

	srv, addr := startServer(t)
	c := newTestClient(t, ClientConfig{
		Addr:             addr,
		LookupMode:       true,
		RequestTimeout:   100 * time.Millisecond,
		Retries:          1,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stay open once tripped
	})
	prep, err := core.PrepareRemote(f.prof.Builder(), f.rc, c)
	if err != nil {
		t.Fatal(err) // the snapshot cache is fetched here, pre-fault
	}
	srv.FaultAfter(10) // let a few lookups through, then "die"

	res, err := prep.Run()
	if err != nil {
		t.Fatalf("degraded run must still complete: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("transport fault became a violation: %v", res.Violation)
	}
	// The verdict-bearing fields must match the local baseline exactly.
	if fmt.Sprint(res.Output) != fmt.Sprint(local.Output) ||
		res.Halted != local.Halted ||
		res.Pipe != local.Pipe ||
		res.SC != local.SC {
		t.Fatal("degraded run diverged from the local baseline")
	}
	// ... and the degradation must be announced, never silent.
	if len(res.SourceNotes) == 0 {
		t.Fatal("degraded run carries no source note")
	}
	note := res.SourceNotes[0]
	if !note.Degraded || note.Module == "" || note.Epoch == 0 || note.Detail == "" {
		t.Fatalf("incomplete degradation note: %+v", note)
	}
	if note.Stale {
		t.Fatalf("no newer generation was published; note must not claim staleness: %+v", note)
	}
}

// TestRemoteDegradedStaleness marks the note stale when the client has
// seen a newer table generation than its cache.
func TestRemoteDegradedStaleness(t *testing.T) {
	f := fixture(t)
	srv, addr := startServer(t)
	c := newTestClient(t, ClientConfig{
		Addr:             addr,
		LookupMode:       true,
		RequestTimeout:   100 * time.Millisecond,
		Retries:          1,
		BackoffBase:      time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	src, err := c.Source(f.prep.Tables[0].Module)
	if err != nil {
		t.Fatal(err)
	}
	// A newer generation lands on the server; the client learns the new
	// epoch from its next response, then the server dies.
	st := f.prep.Tables[0]
	srv.Publish("default", st.Module, *st.Table, st.Snap)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.FaultAfter(0)
	if _, _, err := src.LookupAll(0x4242, 7); !sigtable.IsMiss(err) {
		t.Fatalf("degraded lookup should fall back to the cache's miss verdict, got %v", err)
	}
	note, ok := src.HealthNote()
	if !ok || !note.Degraded || !note.Stale {
		t.Fatalf("want a stale degradation note, got %+v (ok=%v)", note, ok)
	}
}

// TestPrepareRemoteUnavailable checks the no-cache case: when the server
// is unreachable at prepare time there is nothing to degrade to, and the
// failure is a typed transport error — not a violation, not a panic.
func TestPrepareRemoteUnavailable(t *testing.T) {
	f := fixture(t)
	c := newTestClient(t, ClientConfig{
		Addr:           "127.0.0.1:1", // nothing listens here
		DialTimeout:    50 * time.Millisecond,
		RequestTimeout: 50 * time.Millisecond,
		Retries:        1,
		BackoffBase:    time.Millisecond,
	})
	_, err := core.PrepareRemote(f.prof.Builder(), f.rc, c)
	if err == nil {
		t.Fatal("PrepareRemote succeeded with no server")
	}
	if !errors.Is(err, sigtable.ErrUnavailable) {
		t.Fatalf("want ErrUnavailable wrap, got %v", err)
	}
}
