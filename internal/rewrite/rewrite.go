// Package rewrite is a static binary-rewriting pass for rev modules: it
// inserts instruction sequences before chosen instructions of an assembled
// module and repairs everything the insertion moves — PC-relative branch
// displacements, symbol offsets, the entry point, relocation records, and
// absolute code addresses materialized in immediates or stored in data
// jump tables.
//
// It exists to build the *software* control-flow-integrity baseline the
// paper compares against (inline label checks in the style of Abadi et
// al.'s CFI), but it is a general instrumentation facility.
package rewrite

import (
	"fmt"
	"sort"

	"rev/internal/isa"
	"rev/internal/prog"
)

// Insertion asks for a sequence of instructions to be placed immediately
// before the original instruction at index Before (in original instruction
// indices). Inserted code executes whenever control reaches the original
// instruction sequentially or by jump: branches that targeted the original
// instruction are redirected to the first inserted instruction.
type Insertion struct {
	Before int
	Seq    []isa.Instr
}

// Rewriter accumulates insertions for one module.
type Rewriter struct {
	mod        *prog.Module
	insertions map[int][]isa.Instr
}

// New creates a rewriter for a module. The module must not be loaded yet
// (Base == 0): rewriting changes offsets and must happen before the loader
// assigns addresses and applies relocations.
func New(m *prog.Module) (*Rewriter, error) {
	if m.Base != 0 {
		return nil, fmt.Errorf("rewrite: module %q already loaded", m.Name)
	}
	if len(m.Code)%isa.WordSize != 0 {
		return nil, fmt.Errorf("rewrite: ragged code")
	}
	return &Rewriter{mod: m, insertions: make(map[int][]isa.Instr)}, nil
}

// InsertBefore schedules a sequence before original instruction index i.
// Multiple calls for the same index append in call order.
func (r *Rewriter) InsertBefore(i int, seq ...isa.Instr) {
	r.insertions[i] = append(r.insertions[i], seq...)
}

// NumInstrs returns the original instruction count.
func (r *Rewriter) NumInstrs() int { return len(r.mod.Code) / isa.WordSize }

// InstrAt decodes original instruction i.
func (r *Rewriter) InstrAt(i int) isa.Instr {
	return isa.Decode(r.mod.Code[i*isa.WordSize:])
}

// Apply produces the rewritten module (a new module; the input is not
// modified). assumedBase is the load address used to recognize and patch
// absolute code addresses embedded in immediates and in data words
// (prog.CodeBase for a first module).
func (r *Rewriter) Apply(assumedBase uint64) (*prog.Module, error) {
	m := r.mod
	n := r.NumInstrs()

	// newIndex[i] = new instruction index of original instruction i.
	newIndex := make([]int, n+1)
	cursor := 0
	for i := 0; i < n; i++ {
		cursor += len(r.insertions[i])
		newIndex[i] = cursor
		cursor++
	}
	newIndex[n] = cursor
	total := cursor

	inCode := func(addr uint64) (int, bool) {
		if addr < assumedBase || addr >= assumedBase+uint64(n)*isa.WordSize {
			return 0, false
		}
		off := addr - assumedBase
		if off%isa.WordSize != 0 {
			return 0, false
		}
		return int(off / isa.WordSize), true
	}
	// seqStart returns the new index where control should enter for a
	// jump that targeted original instruction i (the first inserted
	// instruction, so instrumentation guards every entry path).
	seqStart := func(i int) int { return newIndex[i] - len(r.insertions[i]) }

	out := make([]isa.Instr, 0, total)
	for i := 0; i < n; i++ {
		out = append(out, r.insertions[i]...)
		in := r.InstrAt(i)
		switch in.Kind() {
		case isa.KindCondBranch, isa.KindJump, isa.KindCall:
			tgtOld := i + int(in.Imm)/isa.WordSize
			if tgtOld < 0 || tgtOld > n {
				return nil, fmt.Errorf("rewrite: branch at %d targets out of module", i)
			}
			var tgtNew int
			if tgtOld == n {
				tgtNew = total
			} else {
				tgtNew = seqStart(tgtOld)
			}
			disp := (tgtNew - newIndex[i]) * isa.WordSize
			if int64(disp) != int64(int32(disp)) {
				return nil, fmt.Errorf("rewrite: displacement overflow at %d", i)
			}
			in.Imm = int32(disp)
		default:
			// Absolute code address materialized in an immediate (jump
			// vectors built with CodeAddrFixup): redirect to the target's
			// instrumented entry.
			if in.Op == isa.ADDI && in.Rs1 == isa.RegZero {
				if oi, ok := inCode(uint64(int64(in.Imm))); ok {
					in.Imm = int32(assumedBase + uint64(seqStart(oi))*isa.WordSize)
				}
			}
		}
		out = append(out, in)
	}

	code := make([]byte, len(out)*isa.WordSize)
	for i, in := range out {
		in.EncodeTo(code[i*isa.WordSize:])
	}

	// Symbols, entry, relocations move with their instructions.
	nm := &prog.Module{
		Name: m.Name + "+instr",
		Code: code,
		Data: append([]byte(nil), m.Data...),
	}
	for _, s := range m.Symbols {
		oi := int(s.Addr / isa.WordSize)
		nm.Symbols = append(nm.Symbols, prog.Symbol{
			Name: s.Name,
			Addr: uint64(seqStart(oi)) * isa.WordSize,
		})
	}
	nm.Entry = uint64(seqStart(int(m.Entry/isa.WordSize))) * isa.WordSize
	nm.DataSyms = append(nm.DataSyms, m.DataSyms...)
	for _, rl := range m.Relocs {
		oi := int(rl.InstrOff / isa.WordSize)
		nm.Relocs = append(nm.Relocs, prog.Reloc{
			InstrOff: uint64(newIndex[oi]) * isa.WordSize,
			Sym:      rl.Sym,
			Add:      rl.Add,
		})
	}

	// Data-resident absolute code addresses (jump tables) follow their
	// targets' instrumented entries.
	for off := 0; off+8 <= len(nm.Data); off += 8 {
		var v uint64
		for b := 7; b >= 0; b-- {
			v = v<<8 | uint64(nm.Data[off+b])
		}
		if oi, ok := inCode(v); ok {
			nv := assumedBase + uint64(seqStart(oi))*isa.WordSize
			for b := 0; b < 8; b++ {
				nm.Data[off+b] = byte(nv >> (8 * b))
			}
		}
	}
	return nm, nil
}

// SortedInsertionPoints lists the original indices with insertions (for
// tests and diagnostics).
func (r *Rewriter) SortedInsertionPoints() []int {
	out := make([]int, 0, len(r.insertions))
	for i := range r.insertions {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
