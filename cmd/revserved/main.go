// Command revserved is the signature-table attestation service: it runs
// the trusted-loader pipeline (profiling, static analysis, encrypted
// table build) for the requested workloads once, then serves the
// resulting table snapshots and per-entry lookups to any number of
// measurement processes over the sigserve wire protocol
// (docs/PROTOCOL.md).
//
// Usage:
//
//	revserved -bench gcc                          # serve gcc's tables
//	revserved -bench all -listen :7415            # every benchmark
//	revserved -bench gcc,mcf -tenant team-a       # a named namespace
//	revserved -bench gcc -delay 1ms               # injected service
//	                                              # latency (bench ladder)
//	revserved -bench gcc -debug-addr :6060        # live /metrics + pprof
//
// The measurement side connects with revsim -sigserver or a
// sigserve.Client; as long as both sides name the same benchmark,
// -scale, -instrs and -format, the served tables are byte-identical to
// the ones the client would have built locally, so verdicts and figures
// are identical too (the acceptance contract in docs/PROTOCOL.md).
//
// Version-2 clients may also retain attestation evidence streams here
// (revsim -evidence-upload): each tenant keeps its newest streams,
// evicting oldest-first under the -evidence-streams / -evidence-bytes
// bounds, and revattest -fetch pulls a retained stream back for offline
// verification (docs/EVIDENCE.md).
//
// SIGINT/SIGTERM drains gracefully: /readyz (on -debug-addr) flips to
// 503 so load balancers route away, in-flight requests are answered
// CodeShutdown, and the process waits up to -drain-timeout before
// force-closing stragglers. -slow-log emits structured JSON lines for
// requests over a threshold (docs/OBSERVABILITY.md).
//
// A sharded control plane is N revserved processes sharing one -ring:
//
//	revserved -bench gcc -tenant team-a,team-b \
//	    -listen 127.0.0.1:7415 \
//	    -ring a=127.0.0.1:7415,b=127.0.0.1:7416 -ring-self a
//
// Every process is started with the identical -ring / -ring-epoch /
// -replicas / -vnodes and the identical (comma-separated) -tenant
// universe; each computes the same bounded-load placement, publishes
// tables only for the namespaces it owns, and refuses the rest with
// CodeWrongShard redirects naming the owner (docs/DEPLOYMENT.md walks
// through the full topology). -admit-rate arms per-shard admission
// control: load beyond it answers CodeOverloaded with a retry-after
// hint instead of queueing.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rev/internal/core"
	"rev/internal/sigserve"
	"rev/internal/sigtable"
	"rev/internal/telemetry"
	"rev/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7415", "address to serve the sigserve protocol on")
	bench := flag.String("bench", "", "benchmark name(s) to build and serve, comma separated, or 'all'")
	tenant := flag.String("tenant", "default", "tenant namespace to publish the tables under")
	format := flag.String("format", "normal", "validation format: normal, aggressive, cfi-only")
	scale := flag.Float64("scale", 1.0, "workload static-size scale (must match the measurement side)")
	instrs := flag.Uint64("instrs", 1_000_000, "profiling instruction budget (must match the measurement side)")
	keySeed := flag.Uint64("keyseed", 0x5eed, "table key derivation seed")
	delay := flag.Duration("delay", 0, "artificial per-request service delay (latency-ladder benchmarking)")
	evStreams := flag.Int("evidence-streams", 0, "retained evidence streams per tenant (0 keeps the default; see docs/EVIDENCE.md)")
	evBytes := flag.Int("evidence-bytes", 0, "per-stream evidence size cap in bytes (0 keeps the default)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, /debug/vars and /debug/pprof on this address while running")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown grace: how long SIGINT/SIGTERM waits for in-flight connections before force-closing")
	tenantRows := flag.Int("tenant-rows", 0, "per-tenant metric row cap before folding into _overflow (0 keeps the default)")
	slowLog := flag.Duration("slow-log", 0, "log requests slower than this as JSON lines on stderr (0 disables)")
	slowRate := flag.Int("slow-log-rate", 10, "max slow-request log lines per second (suppressed lines are counted)")
	ring := flag.String("ring", "", "control-plane membership as id=addr pairs, comma separated; every shard must be started with the identical list (docs/DEPLOYMENT.md)")
	ringSelf := flag.String("ring-self", "", "this process's shard id in -ring (required with -ring)")
	ringEpoch := flag.Uint64("ring-epoch", 1, "topology generation; bump on every membership change, identically on every shard")
	replicas := flag.Int("replicas", 0, "replica-set size per tenant namespace (0 keeps the ring default)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the ring (0 keeps the ring default)")
	admitRate := flag.Int("admit-rate", 0, "admission control: sustained requests/second this shard accepts before answering CodeOverloaded (0 disables)")
	admitBurst := flag.Int("admit-burst", 0, "admission burst allowance in requests (0 defaults to -admit-rate)")
	flag.Parse()

	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := parseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "revserved:", err)
		os.Exit(2)
	}

	var names []string
	if *bench == "all" {
		for _, p := range workload.Profiles() {
			names = append(names, p.Name)
		}
	} else {
		for _, n := range strings.Split(*bench, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	var tenants []string
	for _, tn := range strings.Split(*tenant, ",") {
		if tn = strings.TrimSpace(tn); tn != "" {
			tenants = append(tenants, tn)
		}
	}

	set := &telemetry.Set{Reg: telemetry.NewRegistry()}
	srv := sigserve.NewServer()
	srv.SetTenantRows(*tenantRows)
	srv.Instrument(set)
	srv.SetDelay(*delay)
	srv.SetEvidenceRetention(*evStreams, *evBytes)
	srv.SetSlowLog(os.Stderr, *slowLog, *slowRate)
	srv.SetAdmission(*admitRate, *admitBurst)

	if *ring != "" {
		nodes, err := parseRing(*ring)
		if err != nil {
			fmt.Fprintln(os.Stderr, "revserved:", err)
			os.Exit(2)
		}
		r, err := sigserve.NewRing(nodes, sigserve.RingConfig{
			VNodes:   *vnodes,
			Replicas: *replicas,
			Epoch:    *ringEpoch,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "revserved:", err)
			os.Exit(2)
		}
		if err := srv.SetRing(r, *ringSelf, tenants); err != nil {
			fmt.Fprintln(os.Stderr, "revserved:", err)
			os.Exit(2)
		}
	}
	// A sharded process publishes only the namespaces the ring placed on
	// it; the unsharded single-server case owns everything.
	var owned []string
	for _, tn := range tenants {
		if srv.Owns(tn) {
			owned = append(owned, tn)
		}
	}
	if len(owned) == 0 {
		fmt.Fprintf(os.Stderr, "revserved: shard %q owns none of the configured tenants; serving topology only\n", *ringSelf)
	}

	rc := core.DefaultRunConfig()
	rc.MaxInstrs = *instrs
	rc.KeySeed = *keySeed
	cfg := core.DefaultConfig()
	cfg.Format = f
	rc.REV = &cfg

	for _, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "revserved:", err)
			os.Exit(1)
		}
		p = p.Scaled(*scale)
		start := time.Now()
		prep, err := core.Prepare(p.Builder(), rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revserved: preparing %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, tn := range owned {
			for _, st := range prep.Tables {
				epoch := srv.Publish(tn, st.Module, *st.Table, st.Snap)
				fmt.Fprintf(os.Stderr, "revserved: published %s/%s epoch %d (%s, %d records, %d bytes) in %.2fs\n",
					tn, st.Module, epoch, st.Table.Format, st.Table.Records, st.Table.Size,
					time.Since(start).Seconds())
			}
		}
	}

	if *debugAddr != "" {
		mux := telemetry.NewDebugMux(set.Registry())
		mux.Handle("/healthz", srv.HealthzHandler())
		mux.Handle("/readyz", srv.ReadyzHandler())
		bound, _, err := telemetry.ServeHandler(*debugAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "revserved:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "revserved: debug endpoint on http://%s/metrics\n", bound)
	}

	// First signal drains gracefully: /readyz flips unhealthy, in-flight
	// requests are answered CodeShutdown, and up to -drain-timeout is
	// spent waiting for connections to finish. A second signal (or the
	// deadline) force-closes.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintf(os.Stderr, "revserved: draining (up to %v; signal again to force)\n", *drainTimeout)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "revserved: force close")
			srv.Close()
		}()
		srv.Shutdown(*drainTimeout)
	}()

	if *ring != "" {
		fmt.Fprintf(os.Stderr, "revserved: shard %q (ring epoch %d) serving tenants %q on %s (delay %v)\n",
			*ringSelf, srv.RingEpoch(), strings.Join(owned, ","), *listen, *delay)
	} else {
		fmt.Fprintf(os.Stderr, "revserved: serving tenant %q on %s (delay %v)\n", *tenant, *listen, *delay)
	}
	if err := srv.ListenAndServe(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "revserved:", err)
		os.Exit(1)
	}
}

// parseRing parses -ring's "id=addr,id=addr" membership list.
func parseRing(s string) ([]sigserve.RingNode, error) {
	var nodes []sigserve.RingNode
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -ring entry %q (want id=addr)", part)
		}
		nodes = append(nodes, sigserve.RingNode{ID: id, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-ring is empty")
	}
	return nodes, nil
}

func parseFormat(s string) (sigtable.Format, error) {
	switch s {
	case "normal":
		return sigtable.Normal, nil
	case "aggressive":
		return sigtable.Aggressive, nil
	case "cfi-only":
		return sigtable.CFIOnly, nil
	}
	return 0, fmt.Errorf("unknown format %q", s)
}
