package sigserve

import "net/http"

// Health endpoints (docs/OBSERVABILITY.md "Health endpoints"). Mounted
// by cmd/revserved on its debug mux as /healthz and /readyz; split so
// an orchestrator can distinguish "restart me" (liveness failing) from
// "stop routing to me" (readiness failing, e.g. during Shutdown drain).

// HealthzHandler reports process liveness: it answers 200 for as long
// as the process can serve HTTP at all, including while draining.
func (s *Server) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
}

// ReadyzHandler reports readiness to take new connections: 200 while
// accepting, 503 before Serve and from the moment Shutdown or Close
// begins (so load balancers drain away before connections are answered
// with CodeShutdown).
func (s *Server) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Ready() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		if s.Draining() {
			w.Write([]byte("draining\n"))
		} else {
			w.Write([]byte("not serving\n"))
		}
	})
}
