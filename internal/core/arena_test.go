package core

import (
	"bytes"
	"sync"
	"testing"

	"rev/internal/cpu"
	"rev/internal/evidence"
	"rev/internal/isa"
	"rev/internal/prog"
	"rev/internal/sigtable"
)

// TestArenaReuseMatchesFresh pins the arena determinism contract: N
// back-to-back runs over ONE Prepared — each reusing the same arena, the
// same SPSC rig, the same lane pools — must be byte-identical to a run
// on a freshly built Prepared, at serial and at pipelined lane×batch
// points. Any state a reset fails to clear (cache LRU stamps, memo
// epochs, ring cursors, store-table contents) shows up here as a figure
// divergence.
func TestArenaReuseMatchesFresh(t *testing.T) {
	for _, format := range []sigtable.Format{sigtable.Normal, sigtable.CFIOnly} {
		rc := DefaultRunConfig()
		rc.MaxInstrs = 60_000
		rc.REV = revConfig(format, 8)

		freshPrep, err := Prepare(builderOf(loopProgram), rc)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := freshPrep.RunWithLanes(0)
		if err != nil {
			t.Fatal(err)
		}

		prep, err := Prepare(builderOf(loopProgram), rc)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			lanes, batch int
		}{
			{0, 0}, {1, 1}, {2, 8}, {4, 64},
		} {
			tag := format.String() + "/lanes=" + itoa(c.lanes) + "/batch=" + itoa(c.batch)
			for rep := 0; rep < 3; rep++ {
				res, err := prep.RunInstance(InstanceOptions{Lanes: c.lanes, Batch: c.batch})
				if err != nil {
					t.Fatalf("%s rep=%d: %v", tag, rep, err)
				}
				mustMatch(t, tag+"/rep="+itoa(rep), fresh, res)
			}
		}
	}
}

// TestArenaReuseAttackParity replays an injection attack over a reused
// arena: the same Prepared must reproduce the identical violation —
// reason, offending addresses, output at abort, every figure — run after
// run. The hook is stateless across runs (keyed on the per-run Instret
// counter), so each replay injects at the same point; what the test
// checks is that the arena's program-image restore erases the previous
// run's injected bytes.
func TestArenaReuseAttackParity(t *testing.T) {
	inject := func(m *cpu.Machine, pc uint64, in isa.Instr) {
		if m.Instret == 500 {
			inj := isa.Instr{Op: isa.ADDI, Rd: 20, Imm: 666}
			var buf [isa.WordSize]byte
			inj.EncodeTo(buf[:])
			m.Mem.WriteBytes(prog.CodeBase+2*isa.WordSize, buf[:])
		}
	}
	rc := DefaultRunConfig()
	rc.MaxInstrs = 60_000
	rc.REV = revConfig(sigtable.Normal, 8)
	rc.AttackHook = inject

	freshPrep, err := Prepare(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := freshPrep.RunWithLanes(0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Violation == nil || fresh.Violation.Reason != ViolationHash {
		t.Fatalf("reference run missed the attack: %v", fresh.Violation)
	}

	prep, err := Prepare(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{0, 2} {
		for rep := 0; rep < 3; rep++ {
			res, err := prep.RunWithLanes(lanes)
			if err != nil {
				t.Fatalf("lanes=%d rep=%d: %v", lanes, rep, err)
			}
			mustMatch(t, "attack/lanes="+itoa(lanes)+"/rep="+itoa(rep), fresh, res)
		}
	}
}

// TestArenaReuseSMCWindow reuses one Prepared across self-modifying-code
// runs: each run patches its own code inside a trusted SysREVEnable
// window, bumping the code-version epoch. The engine reset must re-arm
// the code watches so every replay sees the same epoch sequence — and
// the image restore must revert the patch, or the second run would skip
// the store's miss traffic and diverge in the cache figures.
func TestArenaReuseSMCWindow(t *testing.T) {
	gen := smcWindowProgram(true)
	rc := DefaultRunConfig()
	rc.REV = revConfig(sigtable.Normal, 32)

	freshPrep, err := Prepare(builderOf(gen), rc)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := freshPrep.RunWithLanes(0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Violation != nil {
		t.Fatalf("windowed reference run flagged: %v", fresh.Violation)
	}

	prep, err := Prepare(builderOf(gen), rc)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		lanes, batch int
	}{
		{0, 0}, {1, 1}, {4, 64},
	} {
		tag := "smc/lanes=" + itoa(c.lanes) + "/batch=" + itoa(c.batch)
		for rep := 0; rep < 3; rep++ {
			res, err := prep.RunInstance(InstanceOptions{Lanes: c.lanes, Batch: c.batch})
			if err != nil {
				t.Fatalf("%s rep=%d: %v", tag, rep, err)
			}
			mustMatch(t, tag+"/rep="+itoa(rep), fresh, res)
		}
	}
}

// TestArenaReuseEvidenceBytes pins evidence-stream determinism across
// arena reuse: the attestation bytes a reused arena emits must be
// identical to a fresh build's, run after run — commit tuples, segment
// seals, the final outcome record.
func TestArenaReuseEvidenceBytes(t *testing.T) {
	rc := DefaultRunConfig()
	rc.MaxInstrs = 60_000
	rc.REV = revConfig(sigtable.Normal, 8)

	emitTo := func(prep *Prepared, lanes int) []byte {
		t.Helper()
		var buf bytes.Buffer
		em := evidence.NewEmitter(&buf, evidence.Config{Tenant: "arena"})
		if _, err := prep.RunInstance(InstanceOptions{Lanes: lanes, Evidence: em}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	freshPrep, err := Prepare(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	want := emitTo(freshPrep, 0)
	if len(want) == 0 {
		t.Fatal("reference run emitted no evidence")
	}

	prep, err := Prepare(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{0, 2} {
		for rep := 0; rep < 3; rep++ {
			if got := emitTo(prep, lanes); !bytes.Equal(got, want) {
				t.Fatalf("lanes=%d rep=%d: evidence stream diverged (%d vs %d bytes)",
					lanes, rep, len(got), len(want))
			}
		}
	}
}

// TestArenaConcurrentRuns drives one Prepared from several goroutines at
// once: the freelist must hand each caller a private arena (growing on
// first contention), and every result must match the single-threaded
// reference. Run under -race this doubles as the arena ownership check.
func TestArenaConcurrentRuns(t *testing.T) {
	rc := DefaultRunConfig()
	rc.MaxInstrs = 60_000
	rc.REV = revConfig(sigtable.Normal, 8)
	prep, err := Prepare(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := prep.Run()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix serial and pipelined callers to contend for both the
			// arena freelist and (pipelined) the cached rig per arena.
			results[w], errs[w] = prep.RunInstance(InstanceOptions{Lanes: w % 2})
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		mustMatch(t, "concurrent/worker="+itoa(w), fresh, results[w])
	}
}
