package sigtable

import (
	"rev/internal/chash"
	"rev/internal/isa"
)

// Batch lookup and commit-observation seams.
//
// These interfaces let a predictive prefetcher (internal/prefetch) sit
// between the engine and a remote signature source without either side
// importing the other: sigtable is the neutral ground both already
// depend on. A BatchSource answers many speculative queries in as few
// wire round trips as possible; a CommitObserver hears about every
// committed block so a predictor can walk the CFG ahead of execution.

// BatchKind selects what one BatchReq asks for.
type BatchKind uint8

const (
	// BatchLookup is a hashed-table entry query (Source.Lookup): the
	// block identified by (End, Sig), spill walk bounded by Want.
	BatchLookup BatchKind = iota
	// BatchEdge is a CFI-only edge query (Source.LookupEdge): source
	// terminator End, destination Want.Target.
	BatchEdge
)

// BatchReq is one query in a speculative batch. Its fields must match
// the exact query the engine would later issue — same End, Sig, and Want
// — because the touched-address list (and therefore miss-walk timing)
// depends on every field.
type BatchReq struct {
	// Kind selects the query flavor.
	Kind BatchKind
	// End is the block terminator address (edge source for BatchEdge).
	End uint64
	// Sig is the block's runtime signature (unused for BatchEdge).
	Sig chash.Sig
	// Want bounds the spill walk exactly as the engine's own query
	// would; Want.Target doubles as the destination for BatchEdge.
	Want Want
}

// BatchRes is one query's answer. Err is nil for a found entry, ErrMiss
// for a definitive not-found verdict, or a transport error (wrapping
// ErrUnavailable) when the source could not answer — transport failures
// must never be cached or turned into verdicts by the caller.
type BatchRes struct {
	// Entry is the decoded entry when Err is nil.
	Entry Entry
	// Touched lists the RAM addresses the hardware walk would touch,
	// exactly as the blocking query would report them (timing identity).
	Touched []uint64
	// Err is nil, ErrMiss, or a transport error.
	Err error
}

// BatchSource is a Source that can additionally resolve many queries in
// one round trip, for speculative prefetching. Implementations must
// answer each BatchReq exactly as the corresponding blocking call would
// — same entry, same touched list, same miss verdict — and must NOT
// degrade to any fallback on transport failure: a failed speculative
// query is simply returned with its transport error so the caller can
// drop it (the engine's own blocking path keeps today's degradation
// semantics).
type BatchSource interface {
	Source
	// LookupBatch answers every request, one BatchRes per BatchReq, in
	// order. It never returns fewer results than requests.
	LookupBatch(reqs []BatchReq) []BatchRes
	// LiveEpoch returns the newest table generation the source has
	// observed; cached speculative results from an older generation
	// must be discarded by the caller.
	LiveEpoch() uint64
	// RemoteLookups reports whether blocking lookups cross a wire (so
	// speculative batching actually hides latency). Snapshot-mode
	// sources return false and need no prefetching.
	RemoteLookups() bool
}

// CommitObserver hears about every successfully validated block, in
// commit order. The engine invokes it synchronously on the validation
// path, so implementations must be non-blocking and cheap; they must
// also tolerate calls from different goroutines across runs (one run is
// single-goroutine, but a fleet commits from many).
type CommitObserver interface {
	// ObserveCommit reports one committed block: its terminator address,
	// the address control actually flowed to next, and the terminator
	// kind.
	ObserveCommit(end, next uint64, term isa.Kind)
}
