package core

import (
	"runtime"
	"strings"
	"testing"

	"rev/internal/sigtable"
	"rev/internal/telemetry"
	"rev/internal/workload"
)

// telSet builds a fresh metrics+trace sink pair for one test.
func telSet(perTrackEvents int) *telemetry.Set {
	return &telemetry.Set{
		Reg:   telemetry.NewRegistry(),
		Trace: telemetry.NewRecorder(perTrackEvents),
	}
}

// TestTelemetryByteIdentity is the acceptance-gate invariant: attaching
// telemetry sinks must not perturb the simulation by one cycle or one
// output word — serial or pipelined, metrics only or metrics+trace.
func TestTelemetryByteIdentity(t *testing.T) {
	rc := DefaultRunConfig()
	rc.REV = revConfig(sigtable.Normal, 32)
	prep, err := Prepare(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := prep.RunWithTelemetry(nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Violation != nil {
		t.Fatalf("clean run flagged: %v", base.Violation)
	}
	configs := []struct {
		tag string
		set *telemetry.Set
	}{
		{"metrics", &telemetry.Set{Reg: telemetry.NewRegistry()}},
		{"trace", &telemetry.Set{Trace: telemetry.NewRecorder(1 << 12)}},
		{"metrics+trace", telSet(1 << 12)},
	}
	for _, c := range configs {
		got, err := prep.RunWithTelemetry(c.set)
		if err != nil {
			t.Fatalf("%s: %v", c.tag, err)
		}
		mustMatch(t, "serial/"+c.tag, base, got)
	}
	// Pipelined instances with telemetry must match the serial baseline
	// through the same identity contract as untraced pipelined runs.
	for _, lanes := range []int{1, 4} {
		set := telSet(1 << 12)
		got, err := prep.RunInstance(InstanceOptions{Lanes: lanes, Telemetry: set})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		mustMatch(t, "piped+telemetry/lanes="+itoa(lanes), base, got)
	}
}

// TestTelemetryLaneTracks runs a 4-lane pipelined instance with a shared
// recorder (the -race sharing test for per-lane tracks) and checks the
// acceptance shape: one trace track per hash lane carrying hash-block
// spans, a validate track carrying SC miss-service spans, a producer
// track carrying ring-depth counters — and registry counters that
// reconcile with the run's own Stats.
func TestTelemetryLaneTracks(t *testing.T) {
	wl, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.MaxInstrs = 60_000
	rc.REV = revConfig(sigtable.Normal, 32)
	rc.Lanes = 4
	prep, err := Prepare(wl.Builder(), rc)
	if err != nil {
		t.Fatal(err)
	}
	set := telSet(1 << 14)
	res, err := prep.RunWithTelemetry(set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("clean run flagged: %v", res.Violation)
	}

	spansPerTrack := map[string]map[string]int{} // track -> span name -> count
	counters := map[string]int{}
	for _, e := range set.Trace.Events() {
		switch e.Kind {
		case "span":
			m := spansPerTrack[e.Track]
			if m == nil {
				m = map[string]int{}
				spansPerTrack[e.Track] = m
			}
			m[e.Name]++
		case "counter":
			counters[e.Track+"/"+e.Name]++
		}
	}
	var laneJobSpans int
	for i := 0; i < 4; i++ {
		track := laneTrackName(i)
		n := spansPerTrack[track]["hash-block"]
		if n == 0 {
			t.Errorf("lane track %s has no hash-block spans (tracks: %v)", track, trackNames(spansPerTrack))
		}
		laneJobSpans += n
	}
	missSpans := spansPerTrack["validate"]["sc-complete-miss"] + spansPerTrack["validate"]["sc-partial-miss"]
	if missSpans == 0 {
		t.Error("validate track has no SC miss-service spans")
	}
	if counters["producer/ring-depth"] == 0 {
		t.Error("producer track has no ring-depth counter samples")
	}

	snap := set.Reg.Snapshot()
	if got, want := snap.Counters["rev.engine.validated_blocks"], res.Engine.ValidatedBlocks; got != want {
		t.Errorf("registry validated_blocks = %d, run Stats say %d", got, want)
	}
	// Every memo outcome corresponds to one lane job; lanes may also see
	// jobs that neither hash nor hit (e.g. aborted after a violation), so
	// the job counter bounds the memo outcomes from above.
	if got, want := snap.Counters["rev.lane.jobs"], res.Engine.MemoHits+res.Engine.MemoMisses; got < want {
		t.Errorf("rev.lane.jobs = %d < %d memo outcomes", got, want)
	}
	cells := snap.Shards["rev.lane.jobs"]
	if len(cells) != 4 {
		t.Fatalf("rev.lane.jobs shards = %d, want 4", len(cells))
	}
	var cellSum uint64
	for _, v := range cells {
		cellSum += v
	}
	if cellSum != snap.Counters["rev.lane.jobs"] {
		t.Errorf("shard cells sum %d != merged counter %d", cellSum, snap.Counters["rev.lane.jobs"])
	}
	if uint64(laneJobSpans) > cellSum {
		t.Errorf("trace recorded %d hash-block spans but counters say %d jobs", laneJobSpans, cellSum)
	}
	if mr := snap.Histograms["rev.sc.miss_service_cycles"]; mr.Count == 0 {
		t.Error("miss-service-cycle histogram empty despite SC misses")
	}
}

// TestTelemetryEpochFenceEvents is the satellite edge case for tracing
// during an SMC epoch fence: the producer must record the fence as a
// span (events keep flowing while the ring drains), the fence counter
// must fire, and the traced run must stay byte-identical to the
// untraced serial baseline.
func TestTelemetryEpochFenceEvents(t *testing.T) {
	rc := DefaultRunConfig()
	rc.REV = revConfig(sigtable.Normal, 32)
	prep, err := Prepare(builderOf(smcWindowProgram(true)), rc)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := prep.RunWithLanes(0)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Violation != nil {
		t.Fatalf("windowed serial run flagged: %v", serial.Violation)
	}
	set := telSet(1 << 12)
	piped, err := prep.RunInstance(InstanceOptions{Lanes: 2, Telemetry: set})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "smc-fence+telemetry", serial, piped)

	snap := set.Reg.Snapshot()
	if snap.Counters["rev.pipeline.epoch_fences"] == 0 {
		t.Error("epoch fence counter did not fire on a code-version bump")
	}
	var fenceSpans int
	for _, e := range set.Trace.Events() {
		if e.Kind == "span" && e.Name == "epoch-fence" {
			if e.Track != "producer" {
				t.Errorf("epoch-fence span on track %q, want producer", e.Track)
			}
			if e.Dur < 0 {
				t.Errorf("epoch-fence span has negative duration: %+v", e)
			}
			fenceSpans++
		}
	}
	if fenceSpans == 0 {
		t.Error("no epoch-fence spans recorded during the drain")
	}
	if got := snap.Counters["rev.pipeline.epoch_fences"]; uint64(fenceSpans) != got {
		t.Errorf("fence spans (%d) disagree with fence counter (%d)", fenceSpans, got)
	}
}

// TestTelemetryAllocBudget extends the hot-path allocation gate to the
// instrumented configuration: with metrics AND tracing attached, a
// prepared run must still stay within the 0.5 allocs-per-validated-block
// budget — the zero-alloc-on-hot-path design rule, measured end to end.
func TestTelemetryAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget probe is a full run")
	}
	p, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.MaxInstrs = 300_000
	rc.REV = revConfig(sigtable.Normal, 32)
	prep, err := Prepare(p.Builder(), rc)
	if err != nil {
		t.Fatal(err)
	}
	set := telSet(1 << 12)
	if _, err := prep.RunWithTelemetry(set); err != nil { // warm-up
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := prep.RunWithTelemetry(set)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	blocks := res.Pipe.BBCount
	if blocks == 0 {
		t.Fatal("no blocks validated")
	}
	perBlock := float64(after.Mallocs-before.Mallocs) / float64(blocks)
	t.Logf("telemetry on: %d mallocs / %d blocks = %.3f per block",
		after.Mallocs-before.Mallocs, blocks, perBlock)
	if perBlock > 0.5 {
		t.Errorf("%.3f allocs per validated block with telemetry, budget is 0.5", perBlock)
	}
}

// trackNames summarizes which tracks carried spans (test diagnostics).
func trackNames(m map[string]map[string]int) string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	return strings.Join(names, ",")
}
