package chash

import (
	"runtime"
	"sync/atomic"
	"time"
)

// SPSC is a bounded, lock-free single-producer/single-consumer sequence
// ring: the hand-off spine of the intra-run validation pipeline. It does
// not store elements itself — callers own a power-of-two slot array and
// index it with SlotOf(seq), which keeps the ring reusable for any record
// type without interface boxing or per-element allocation.
//
// Protocol (see docs/CONCURRENCY.md "Intra-run pipeline"):
//
//	producer:  seq, ok := r.TryAcquire()   // claim; fill slots[r.SlotOf(seq)]
//	           r.Publish()                 // release-store: slot visible
//	consumer:  seq, ok := r.TryPeek()      // acquire-load: slot readable
//	           ...process...
//	           r.Release()                 // slot reusable by the producer
//
// Batched variant: the producer may claim several slots with repeated
// TryAcquire calls before making them visible in one PublishN(n), and the
// consumer may retire several records before one ReleaseN(n) — the
// amortized form of the same ownership transfer. A claimed-but-never-
// published slot is returned with Unclaim (the producer's abandoned tail
// slot at stream end). Claims are producer-local bookkeeping: observers
// never see a slot before its publish.
//
// head counts published records, tail counts released records; both only
// ever increase, so seq doubles as the record's global program-order
// number. Intermediate observers (the hash lanes) may watch Published()
// and read any slot in [Released(), Published()) — the producer never
// rewrites a slot before the consumer releases it, and the consumer never
// reads hash results before the lane's own release-store (BlockJob.done).
//
// The hot counters and the per-side caches live on separate cache lines so
// the producer and consumer never false-share: the producer re-reads tail
// only when the ring looks full, the consumer re-reads head only when it
// looks empty (the classic cached-index SPSC optimization).
type SPSC struct {
	mask uint64
	size uint64
	_    [6]uint64 // pad to a cache line

	head atomic.Uint64 // published count (producer writes, release)
	_    [7]uint64

	tail atomic.Uint64 // released count (consumer writes, release)
	_    [7]uint64

	cachedTail uint64 // producer-local cache of tail
	// acquired counts claimed slots (producer-local, plain field): always
	// >= head; the gap is the producer's filled-but-unpublished batch.
	acquired uint64
	_        [6]uint64

	cachedHead uint64 // consumer-local cache of head
	_          [7]uint64
}

// NewSPSC returns a ring with capacity rounded up to a power of two
// (minimum 2).
func NewSPSC(capacity int) *SPSC {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC{mask: n - 1, size: n}
}

// Cap returns the ring capacity.
func (r *SPSC) Cap() int { return int(r.size) }

// SlotOf maps a sequence number to its slot index.
func (r *SPSC) SlotOf(seq uint64) int { return int(seq & r.mask) }

// TryAcquire claims the next free sequence number, or reports ok=false
// when the ring is full (every slot is claimed or still unreleased).
// Producer-only. The claim must be resolved by a later Publish/PublishN
// covering it, or returned with Unclaim.
func (r *SPSC) TryAcquire() (seq uint64, ok bool) {
	if r.acquired-r.cachedTail >= r.size {
		r.cachedTail = r.tail.Load()
		if r.acquired-r.cachedTail >= r.size {
			return 0, false
		}
	}
	seq = r.acquired
	r.acquired++
	return seq, true
}

// Unclaim returns the most recently claimed, still-unpublished slot (a
// claimed slot the stream ended before filling). Producer-only.
func (r *SPSC) Unclaim() { r.acquired-- }

// Pending returns the number of claimed-but-unpublished slots.
// Producer-only (it reads the producer's plain claim cursor).
func (r *SPSC) Pending() int { return int(r.acquired - r.head.Load()) }

// Publish makes the oldest claimed slot visible to the consumer and any
// intermediate observers. Producer-only.
func (r *SPSC) Publish() { r.head.Add(1) }

// PublishN makes the oldest n claimed slots visible in one release-store —
// the batched publish. Producer-only; n must not exceed Pending().
func (r *SPSC) PublishN(n int) { r.head.Add(uint64(n)) }

// TryPeek returns the oldest unreleased sequence number, or ok=false when
// the ring is empty. Consumer-only.
func (r *SPSC) TryPeek() (seq uint64, ok bool) {
	tail := r.tail.Load() // own counter
	if tail >= r.cachedHead {
		r.cachedHead = r.head.Load()
		if tail >= r.cachedHead {
			return 0, false
		}
	}
	return tail, true
}

// Release frees the oldest slot for reuse by the producer. Consumer-only.
func (r *SPSC) Release() { r.tail.Add(1) }

// ReleaseN frees the oldest n slots in one release-store — the batched
// retire. Consumer-only; n must not exceed Published()-Released().
func (r *SPSC) ReleaseN(n int) { r.tail.Add(uint64(n)) }

// Published returns the number of records published so far (observer-safe).
func (r *SPSC) Published() uint64 { return r.head.Load() }

// Released returns the number of records released so far (observer-safe).
func (r *SPSC) Released() uint64 { return r.tail.Load() }

// Drained reports whether every published record has been released — the
// quiescent state the epoch fence waits for.
func (r *SPSC) Drained() bool { return r.tail.Load() == r.head.Load() }

// StopFlag is a one-way abort latch shared by the pipeline stages: the
// consumer raises it when a run ends (violation, error, or normal
// completion) and the producer polls it inside every wait loop so it can
// never spin forever against a stage that has stopped draining.
type StopFlag struct{ f atomic.Bool }

// Raise latches the abort signal (any goroutine).
func (s *StopFlag) Raise() { s.f.Store(true) }

// Raised reports whether the abort signal is latched (any goroutine).
func (s *StopFlag) Raised() bool { return s.f.Load() }

// Reset re-arms the latch for a new run. Only safe once every stage that
// polled the flag has joined (the run-arena reuse path).
func (s *StopFlag) Reset() { s.f.Store(false) }

// Backoff is the pipeline's cooperative wait strategy: a few raw spins
// (the counterparty is usually a cache miss away on a multicore), then
// scheduler yields (essential at GOMAXPROCS=1, where the counterparty can
// only run if we step aside), then short sleeps so a starved stage never
// burns a core.
type Backoff struct{ n int }

const (
	backoffSpin  = 8
	backoffYield = 256
	backoffSleep = 20 * time.Microsecond
)

// Wait performs one escalating backoff step.
func (b *Backoff) Wait() {
	switch {
	case b.n < backoffSpin:
		// Busy spin: cheapest when the other side is actively running.
	case b.n < backoffYield:
		runtime.Gosched()
	default:
		time.Sleep(backoffSleep)
	}
	b.n++
}

// Reset clears the escalation after successful progress.
func (b *Backoff) Reset() { b.n = 0 }
