// Package chash implements the cryptographic hashing used by REV: a
// from-scratch CubeHash (the SHA-3 candidate the paper selects for its
// crypto hash generator, Sec. VI) plus the pipelined crypto hash generator
// (CHG) timing model whose latency H is overlapped with the S pipeline
// stages between fetch and commit.
//
// The paper uses a 5-round CubeHash whose hardware pipeline meets a
// 16-cycle latency target and truncates the digest to its last 4 bytes to
// keep signature-table entries small (Sec. V.C).
//
// The package exposes two API tiers: the allocating conveniences (Sum,
// BBSignature) and the zero-allocation hot-path variants (SumInto,
// BBSignatureInto) used by the engine's per-block validation loop. Both
// tiers produce bit-identical digests; the alloc-free tier streams the
// message through the sponge state directly instead of assembling a
// concatenated buffer.
package chash

import (
	"encoding/binary"
	"math/bits"
)

// CubeHash computes CubeHash r/b-h digests. The zero value is not usable;
// use New or the package-level Sum helpers.
type CubeHash struct {
	r  int // rounds per message block
	b  int // block size in bytes (1..128)
	h  int // digest size in bits (8..512, multiple of 8)
	iv [32]uint32
}

// Default parameters: the paper's 5-round variant over 32-byte blocks with
// a 512-bit state-derived digest, truncated to 4 bytes for BB signatures.
const (
	DefaultRounds = 5
	DefaultBlock  = 32
	DefaultBits   = 512
	// SigBytes is the truncated basic-block signature width (Sec. V.C).
	SigBytes = 4
)

// New returns a CubeHash with the given parameters. The initial state is
// derived with 10*r initialization rounds as in the CubeHash submission.
func New(rounds, block, bitsOut int) *CubeHash {
	if rounds <= 0 || block <= 0 || block > 128 || bitsOut <= 0 || bitsOut > 512 || bitsOut%8 != 0 {
		panic("chash: invalid CubeHash parameters")
	}
	c := &CubeHash{r: rounds, b: block, h: bitsOut}
	var x [32]uint32
	x[0] = uint32(bitsOut / 8)
	x[1] = uint32(block)
	x[2] = uint32(rounds)
	roundN(&x, 10*rounds)
	c.iv = x
	return c
}

var defaultHash = New(DefaultRounds, DefaultBlock, DefaultBits)

// Sum computes the digest of msg with the default parameters.
func Sum(msg []byte) []byte { return defaultHash.Sum(msg) }

// SumInto computes the digest of msg with the default parameters into
// out without allocating; len(out) must be DefaultBits/8 (64) bytes.
// The default hash is stateless per call, so SumInto is safe for
// concurrent use.
func SumInto(msg, out []byte) { defaultHash.SumInto(msg, out) }

// Sum computes the CubeHash digest of msg.
func (c *CubeHash) Sum(msg []byte) []byte {
	out := make([]byte, c.h/8)
	c.SumInto(msg, out)
	return out
}

// SumInto computes the CubeHash digest of msg into out without allocating.
// len(out) must be the digest size (h/8 bytes).
func (c *CubeHash) SumInto(msg, out []byte) {
	if len(out) != c.h/8 {
		panic("chash: SumInto output length does not match digest size")
	}
	x := c.iv
	// Process whole blocks.
	for len(msg) >= c.b {
		xorBlock(&x, msg[:c.b])
		roundN(&x, c.r)
		msg = msg[c.b:]
	}
	// Pad: 0x80 then zeros to the block boundary. The scratch block lives
	// on the stack (max block size is 128 bytes).
	var blk [128]byte
	n := copy(blk[:], msg)
	blk[n] = 0x80
	xorBlock(&x, blk[:c.b])
	roundN(&x, c.r)
	c.finalize(&x, out)
}

// finalize flips the last state bit-word, runs the closing rounds, and
// serializes the digest.
func (c *CubeHash) finalize(x *[32]uint32, out []byte) {
	x[31] ^= 1
	roundN(x, 10*c.r)
	for i := range out {
		out[i] = byte(x[i/4] >> (8 * (i % 4)))
	}
}

func xorBlock(x *[32]uint32, blk []byte) {
	for i := 0; i+4 <= len(blk); i += 4 {
		x[i/4] ^= binary.LittleEndian.Uint32(blk[i:])
	}
	if rem := len(blk) % 4; rem != 0 {
		base := len(blk) - rem
		var w uint32
		for i := 0; i < rem; i++ {
			w |= uint32(blk[base+i]) << (8 * i)
		}
		x[base/4] ^= w
	}
}

// roundN applies n CubeHash rounds to the state.
func roundN(x *[32]uint32, n int) {
	for ; n > 0; n-- {
		round(x)
	}
}

// Sig is a truncated basic-block signature: the last SigBytes bytes of the
// CubeHash digest, as the paper stores in signature-table entries.
type Sig uint32

// BBSignature computes the reference signature of a basic block: the hash
// covers the raw instruction bytes plus the block's start and end virtual
// addresses. Including the start address lets signature-table collision
// chains discriminate overlapping blocks that share a terminating
// instruction (Sec. V.B); the end address binds the signature to the
// block's identity used for table lookup.
func BBSignature(instrBytes []byte, start, end uint64) Sig {
	var sig Sig
	BBSignatureInto(&sig, instrBytes, start, end)
	return sig
}

// BBSignatureInto computes the basic-block signature of (instrBytes, start,
// end) into *dst without allocating: the hashed message — the instruction
// bytes followed by the two little-endian addresses — streams through the
// sponge state directly, and only the truncated last SigBytes of the digest
// are materialized. Bit-identical to BBSignature.
func BBSignatureInto(dst *Sig, instrBytes []byte, start, end uint64) {
	c := defaultHash
	x := c.iv
	for len(instrBytes) >= c.b {
		xorBlock(&x, instrBytes[:c.b])
		roundN(&x, c.r)
		instrBytes = instrBytes[c.b:]
	}
	// Tail: the remaining code bytes (< b), the 16 address bytes, the 0x80
	// pad, and zeros up to a block boundary. Worst case (b = 128) is
	// 127 + 16 + 1 = 144 bytes, padded to 256; the scratch stays on the
	// stack.
	var tail [256]byte
	n := copy(tail[:], instrBytes)
	binary.LittleEndian.PutUint64(tail[n:], start)
	binary.LittleEndian.PutUint64(tail[n+8:], end)
	n += 16
	tail[n] = 0x80
	n++
	n = (n + c.b - 1) / c.b * c.b
	for off := 0; off < n; off += c.b {
		xorBlock(&x, tail[off:off+c.b])
		roundN(&x, c.r)
	}
	x[31] ^= 1
	roundN(&x, 10*c.r)
	// The truncated signature is the last SigBytes bytes of the h/8-byte
	// little-endian digest, assembled LSB-first exactly as
	// binary.LittleEndian.Uint32(digest[h/8-SigBytes:]) would.
	nb := c.h / 8
	var v uint32
	for i := nb - SigBytes; i < nb; i++ {
		v |= uint32(byte(x[i/4]>>(8*(i%4)))) << (8 * (i - (nb - SigBytes)))
	}
	*dst = Sig(v)
}

// round is one CubeHash round, fully unrolled with the swap steps
// folded into variable renaming (they cost nothing at run time). The
// structure mirrors the specification's ten steps; roundRef in the test
// file keeps the loop form and the two are checked against each other.
//
// Code generated mechanically from the loop form; edit roundRef first.
func round(x *[32]uint32) {
	x00 := x[0]
	x01 := x[1]
	x02 := x[2]
	x03 := x[3]
	x04 := x[4]
	x05 := x[5]
	x06 := x[6]
	x07 := x[7]
	x08 := x[8]
	x09 := x[9]
	x10 := x[10]
	x11 := x[11]
	x12 := x[12]
	x13 := x[13]
	x14 := x[14]
	x15 := x[15]
	x16 := x[16]
	x17 := x[17]
	x18 := x[18]
	x19 := x[19]
	x20 := x[20]
	x21 := x[21]
	x22 := x[22]
	x23 := x[23]
	x24 := x[24]
	x25 := x[25]
	x26 := x[26]
	x27 := x[27]
	x28 := x[28]
	x29 := x[29]
	x30 := x[30]
	x31 := x[31]
	// add x[j] into x[16+j]
	x16 += x00
	x17 += x01
	x18 += x02
	x19 += x03
	x20 += x04
	x21 += x05
	x22 += x06
	x23 += x07
	x24 += x08
	x25 += x09
	x26 += x10
	x27 += x11
	x28 += x12
	x29 += x13
	x30 += x14
	x31 += x15
	// rotate x[j] left 7
	x00 = bits.RotateLeft32(x00, 7)
	x01 = bits.RotateLeft32(x01, 7)
	x02 = bits.RotateLeft32(x02, 7)
	x03 = bits.RotateLeft32(x03, 7)
	x04 = bits.RotateLeft32(x04, 7)
	x05 = bits.RotateLeft32(x05, 7)
	x06 = bits.RotateLeft32(x06, 7)
	x07 = bits.RotateLeft32(x07, 7)
	x08 = bits.RotateLeft32(x08, 7)
	x09 = bits.RotateLeft32(x09, 7)
	x10 = bits.RotateLeft32(x10, 7)
	x11 = bits.RotateLeft32(x11, 7)
	x12 = bits.RotateLeft32(x12, 7)
	x13 = bits.RotateLeft32(x13, 7)
	x14 = bits.RotateLeft32(x14, 7)
	x15 = bits.RotateLeft32(x15, 7)
	// swap halves of the low state (renamed), xor x[16+j] into x[j]
	x08 ^= x16
	x09 ^= x17
	x10 ^= x18
	x11 ^= x19
	x12 ^= x20
	x13 ^= x21
	x14 ^= x22
	x15 ^= x23
	x00 ^= x24
	x01 ^= x25
	x02 ^= x26
	x03 ^= x27
	x04 ^= x28
	x05 ^= x29
	x06 ^= x30
	x07 ^= x31
	// swap high pairs at distance 2 (renamed), add x[j] into x[16+j]
	x18 += x08
	x19 += x09
	x16 += x10
	x17 += x11
	x22 += x12
	x23 += x13
	x20 += x14
	x21 += x15
	x26 += x00
	x27 += x01
	x24 += x02
	x25 += x03
	x30 += x04
	x31 += x05
	x28 += x06
	x29 += x07
	// rotate x[j] left 11
	x08 = bits.RotateLeft32(x08, 11)
	x09 = bits.RotateLeft32(x09, 11)
	x10 = bits.RotateLeft32(x10, 11)
	x11 = bits.RotateLeft32(x11, 11)
	x12 = bits.RotateLeft32(x12, 11)
	x13 = bits.RotateLeft32(x13, 11)
	x14 = bits.RotateLeft32(x14, 11)
	x15 = bits.RotateLeft32(x15, 11)
	x00 = bits.RotateLeft32(x00, 11)
	x01 = bits.RotateLeft32(x01, 11)
	x02 = bits.RotateLeft32(x02, 11)
	x03 = bits.RotateLeft32(x03, 11)
	x04 = bits.RotateLeft32(x04, 11)
	x05 = bits.RotateLeft32(x05, 11)
	x06 = bits.RotateLeft32(x06, 11)
	x07 = bits.RotateLeft32(x07, 11)
	// swap low pairs at distance 4 (renamed), xor x[16+j] into x[j]
	x12 ^= x18
	x13 ^= x19
	x14 ^= x16
	x15 ^= x17
	x08 ^= x22
	x09 ^= x23
	x10 ^= x20
	x11 ^= x21
	x04 ^= x26
	x05 ^= x27
	x06 ^= x24
	x07 ^= x25
	x00 ^= x30
	x01 ^= x31
	x02 ^= x28
	x03 ^= x29
	// store back (adjacent high pairs swapped via the renaming)
	x[0] = x12
	x[1] = x13
	x[2] = x14
	x[3] = x15
	x[4] = x08
	x[5] = x09
	x[6] = x10
	x[7] = x11
	x[8] = x04
	x[9] = x05
	x[10] = x06
	x[11] = x07
	x[12] = x00
	x[13] = x01
	x[14] = x02
	x[15] = x03
	x[16] = x19
	x[17] = x18
	x[18] = x17
	x[19] = x16
	x[20] = x23
	x[21] = x22
	x[22] = x21
	x[23] = x20
	x[24] = x27
	x[25] = x26
	x[26] = x25
	x[27] = x24
	x[28] = x31
	x[29] = x30
	x[30] = x29
	x[31] = x28
}
