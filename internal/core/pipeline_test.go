package core

import (
	"reflect"
	"runtime"
	"testing"

	"rev/internal/asm"
	"rev/internal/cpu"
	"rev/internal/isa"
	"rev/internal/prog"
	"rev/internal/sigtable"
)

// normMemo clears the simulator-internal signature-memo counters: the
// serial engine uses one direct-mapped memo while the pipelined engine
// shards it per lane, so hit/miss counts are the one part of Stats the
// identity contract excludes (see pipeline.go).
func normMemo(s Stats) Stats {
	s.MemoHits, s.MemoMisses = 0, 0
	return s
}

// mustMatch asserts the full byte-identity contract between a serial and
// a pipelined run: figures, verdicts, observable output — everything but
// the sharded memo counters.
func mustMatch(t *testing.T, tag string, serial, piped *Result) {
	t.Helper()
	if !reflect.DeepEqual(serial.Output, piped.Output) {
		t.Fatalf("%s: output diverged:\nserial %v\npiped  %v", tag, serial.Output, piped.Output)
	}
	if serial.Halted != piped.Halted {
		t.Fatalf("%s: halted diverged: serial=%v piped=%v", tag, serial.Halted, piped.Halted)
	}
	if !reflect.DeepEqual(serial.Violation, piped.Violation) {
		t.Fatalf("%s: verdict diverged:\nserial %v\npiped  %v", tag, serial.Violation, piped.Violation)
	}
	if serial.Pipe != piped.Pipe {
		t.Fatalf("%s: pipeline stats diverged (timing parity broken):\nserial %+v\npiped  %+v",
			tag, serial.Pipe, piped.Pipe)
	}
	if serial.Branch != piped.Branch || serial.UniqueBranches != piped.UniqueBranches {
		t.Fatalf("%s: branch stats diverged", tag)
	}
	if serial.L1D != piped.L1D || serial.L1I != piped.L1I ||
		serial.L2 != piped.L2 || serial.DRAM != piped.DRAM {
		t.Fatalf("%s: cache stats diverged", tag)
	}
	if serial.SC != piped.SC {
		t.Fatalf("%s: SC stats diverged:\nserial %+v\npiped  %+v", tag, serial.SC, piped.SC)
	}
	if normMemo(serial.Engine) != normMemo(piped.Engine) {
		t.Fatalf("%s: engine stats diverged:\nserial %+v\npiped  %+v",
			tag, serial.Engine, piped.Engine)
	}
	if serial.Shadow != piped.Shadow {
		t.Fatalf("%s: shadow stats diverged", tag)
	}
}

// TestPipelinedMatchesSerial is the intra-run analogue of PR 2's
// parallel-identity probe: for every table format and lane count, the
// pipelined executor must be observationally byte-identical to the serial
// loop — same simulated cycles, same SC behaviour, same output.
func TestPipelinedMatchesSerial(t *testing.T) {
	for _, format := range []sigtable.Format{sigtable.Normal, sigtable.Aggressive, sigtable.CFIOnly} {
		rc := DefaultRunConfig()
		rc.MaxInstrs = 60_000
		rc.REV = revConfig(format, 8)
		prep, err := Prepare(builderOf(loopProgram), rc)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := prep.RunWithLanes(0)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Violation != nil || !serial.Halted {
			t.Fatalf("%v: serial reference run broken: vio=%v halted=%v",
				format, serial.Violation, serial.Halted)
		}
		for _, lanes := range []int{1, 2, 4} {
			piped, err := prep.RunWithLanes(lanes)
			if err != nil {
				t.Fatalf("%v lanes=%d: %v", format, lanes, err)
			}
			mustMatch(t, format.String()+"/lanes="+itoa(lanes), serial, piped)
		}
	}
}

// TestPipelinedBaselineParity pins the engine-less path: a base-core run
// (no REV attached) through the pipelined executor must report identical
// figures too — the lanes degenerate to pass-throughs.
func TestPipelinedBaselineParity(t *testing.T) {
	rc := DefaultRunConfig()
	rc.MaxInstrs = 60_000
	serial, err := Run(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Lanes = 2
	piped, err := Run(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "baseline/lanes=2", serial, piped)
}

// TestPipelinedPageShadowingParity runs the strict deferred-update
// variant through the pipeline: shadow commit/abort decisions and page
// counters must match the serial run.
func TestPipelinedPageShadowingParity(t *testing.T) {
	rc := DefaultRunConfig()
	rc.MaxInstrs = 60_000
	rc.REV = revConfig(sigtable.Normal, 8)
	rc.PageShadowing = true
	prep, err := Prepare(builderOf(loopProgram), rc)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := prep.RunWithLanes(0)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := prep.RunWithLanes(4)
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "shadow/lanes=4", serial, piped)
}

// attackScenario is one attack parity case: a victim program plus a
// factory for a fresh (stateful) injection hook per run.
type attackScenario struct {
	name    string
	gen     func(b *asm.Builder)
	newHook func() func(m *cpu.Machine, pc uint64, in isa.Instr)
}

func attackScenarios() []attackScenario {
	return []attackScenario{
		{
			name: "code-injection",
			gen:  loopProgram,
			newHook: func() func(m *cpu.Machine, pc uint64, in isa.Instr) {
				fired := false
				return func(m *cpu.Machine, pc uint64, in isa.Instr) {
					if m.Instret == 500 && !fired {
						fired = true
						inj := isa.Instr{Op: isa.ADDI, Rd: 20, Imm: 666}
						var buf [isa.WordSize]byte
						inj.EncodeTo(buf[:])
						m.Mem.WriteBytes(prog.CodeBase+2*isa.WordSize, buf[:])
					}
				}
			},
		},
		{
			name: "illegal-computed-jump",
			gen:  loopProgram,
			newHook: func() func(m *cpu.Machine, pc uint64, in isa.Instr) {
				fired := false
				return func(m *cpu.Machine, pc uint64, in isa.Instr) {
					if !fired && in.Op == isa.JR && m.Instret > 100 {
						fired = true
						m.X[13] = prog.CodeBase + 1*isa.WordSize
					}
				}
			},
		},
		{
			name: "decode-fault",
			gen:  loopProgram,
			newHook: func() func(m *cpu.Machine, pc uint64, in isa.Instr) {
				fired := false
				return func(m *cpu.Machine, pc uint64, in isa.Instr) {
					if m.Instret == 500 && !fired {
						fired = true
						// Stomp the loop head with illegal bytes: the fetch
						// unit faults at decode mid-block.
						bad := [isa.WordSize]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
						m.Mem.WriteBytes(prog.CodeBase+2*isa.WordSize, bad[:])
					}
				}
			},
		},
	}
}

// TestPipelinedAttackParity replays the attack suite through the
// pipelined executor: the verdict (reason and offending addresses), the
// observable output at abort, and every simulated figure must be
// byte-identical to the serial engine, for every lane count.
func TestPipelinedAttackParity(t *testing.T) {
	for _, sc := range attackScenarios() {
		runOnce := func(lanes int) *Result {
			t.Helper()
			rc := DefaultRunConfig()
			rc.MaxInstrs = 60_000
			rc.REV = revConfig(sigtable.Normal, 8)
			rc.AttackHook = sc.newHook()
			prep, err := Prepare(builderOf(sc.gen), rc)
			if err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
			res, err := prep.RunWithLanes(lanes)
			if err != nil {
				t.Fatalf("%s lanes=%d: %v", sc.name, lanes, err)
			}
			return res
		}
		serial := runOnce(0)
		if serial.Violation == nil {
			t.Fatalf("%s: serial reference missed the attack", sc.name)
		}
		for _, lanes := range []int{1, 4} {
			mustMatch(t, sc.name+"/lanes="+itoa(lanes), serial, runOnce(lanes))
		}
	}
}

// TestPipelinedSMCWindowParity drives the trusted self-modifying-code
// window through the pipeline. It exercises both pipelined-specific
// mechanisms at once: the SYS event replay (REV disable/enable must reach
// the consumer in program order) and the epoch fence (the code-version
// bump must drain in-flight lanes before the memo is reused).
// smcWindowProgram builds the self-modifying-code probe: main patches
// the body of "patchme" with an OUT instruction, optionally inside a
// trusted SysREVEnable window. Shared by the SMC parity tests here, the
// arena-reuse suite (arena_test.go), and the batch edge-case suite.
func smcWindowProgram(withWindow bool) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Func("main")
		b.Entry("main")
		if withWindow {
			b.LoadImm(4, 0)
			b.Sys(isa.SysREVEnable, 4)
		}
		b.LoadImm(5, 1234)
		patch := isa.Instr{Op: isa.OUT, Rs1: 5}
		enc := patch.Encode()
		var word uint64
		for i := 7; i >= 0; i-- {
			word = word<<8 | uint64(enc[i])
		}
		b.LoadImm(6, int64(word))
		b.CodeAddrFixup(7, "patchme")
		b.Store(6, 7, 0)
		b.Call("patchme")
		if withWindow {
			b.LoadImm(4, 1)
			b.Sys(isa.SysREVEnable, 4)
		}
		b.Out(5)
		b.Halt()
		b.Func("patchme")
		b.Nop()
		b.Ret()
	}
}

func TestPipelinedSMCWindowParity(t *testing.T) {
	gen := smcWindowProgram
	for _, withWindow := range []bool{true, false} {
		rc := DefaultRunConfig()
		rc.REV = revConfig(sigtable.Normal, 32)
		prep, err := Prepare(builderOf(gen(withWindow)), rc)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := prep.RunWithLanes(0)
		if err != nil {
			t.Fatal(err)
		}
		if withWindow {
			if serial.Violation != nil {
				t.Fatalf("windowed serial run flagged: %v", serial.Violation)
			}
		} else if serial.Violation == nil || serial.Violation.Reason != ViolationHash {
			t.Fatalf("unwindowed serial run should hash-violate, got %v", serial.Violation)
		}
		for _, lanes := range []int{1, 4} {
			piped, err := prep.RunWithLanes(lanes)
			if err != nil {
				t.Fatalf("lanes=%d: %v", lanes, err)
			}
			tag := "smc-window"
			if !withWindow {
				tag = "smc-nowindow"
			}
			mustMatch(t, tag+"/lanes="+itoa(lanes), serial, piped)
		}
	}
}

// TestPipelinedDeferredForensics pins the deferred-capture path: a
// violating pipelined run must still record exactly one evidence entry
// with the serial run's reason, captured only after the producer
// goroutine quiesced.
func TestPipelinedDeferredForensics(t *testing.T) {
	sc := attackScenarios()[0] // code injection
	rc := DefaultRunConfig()
	rc.MaxInstrs = 60_000
	rc.REV = revConfig(sigtable.Normal, 8)
	rc.REV.Forensics = true
	rc.AttackHook = sc.newHook()
	prep, err := Prepare(builderOf(sc.gen), rc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.RunWithLanes(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Reason != ViolationHash {
		t.Fatalf("violation = %v, want hash-mismatch", res.Violation)
	}
	if len(res.Forensics.Records) != 1 {
		t.Fatalf("forensics entries = %d, want 1", len(res.Forensics.Records))
	}
	ev := res.Forensics.Records[0]
	if ev.Reason != ViolationHash.String() || ev.BBStart != res.Violation.BBStart {
		t.Fatalf("captured evidence %+v does not match verdict %+v", ev, res.Violation)
	}
}

// TestAutoLanes pins the GOMAXPROCS-driven sizing rule and the
// RunConfig.Lanes resolution semantics.
func TestAutoLanes(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, c := range []struct{ procs, want int }{
		{1, 0}, {2, 1}, {3, 2}, {5, 4}, {8, 4},
	} {
		runtime.GOMAXPROCS(c.procs)
		if got := AutoLanes(); got != c.want {
			t.Errorf("AutoLanes @ GOMAXPROCS=%d = %d, want %d", c.procs, got, c.want)
		}
		if got := resolveLanes(-1); got != c.want {
			t.Errorf("resolveLanes(-1) @ GOMAXPROCS=%d = %d, want %d", c.procs, got, c.want)
		}
	}
	runtime.GOMAXPROCS(prev)
	if resolveLanes(0) != 0 || resolveLanes(3) != 3 {
		t.Error("explicit lane counts must pass through unchanged")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
