// Speclike runs one SPEC-2006-like workload (gobmk by default — the
// paper's worst case) across a sweep of signature-cache sizes, showing how
// SC capacity buys back the validation overhead (the Figure 6/7 dynamic).
package main

import (
	"flag"
	"fmt"
	"log"

	"rev"
)

func main() {
	bench := flag.String("bench", "gobmk", "workload name")
	instrs := flag.Uint64("instrs", 500_000, "committed instructions")
	scale := flag.Float64("scale", 0.25, "workload static-size scale")
	flag.Parse()

	p, err := rev.Benchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	p = p.Scaled(*scale)

	base := rev.DefaultRunConfig()
	base.MaxInstrs = *instrs
	bres, err := rev.Run(p.Builder(), base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d instructions, scale %.2f\n\n", p.Name, *instrs, *scale)
	fmt.Printf("%-10s %8s %10s %12s %12s\n", "config", "IPC", "overhead", "SC misses", "miss rate")
	fmt.Printf("%-10s %8.3f %10s %12s %12s\n", "base", bres.IPC(), "-", "-", "-")

	for _, kb := range []int{8, 16, 32, 64, 128} {
		cfg := rev.DefaultRunConfig()
		cfg.MaxInstrs = *instrs
		rc := rev.DefaultREVConfig()
		rc.SC.SizeKB = kb
		cfg.REV = rc
		res, err := rev.Run(p.Builder(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Violation != nil {
			log.Fatalf("unexpected violation: %v", res.Violation)
		}
		ovh := 100 * (bres.IPC() - res.IPC()) / bres.IPC()
		fmt.Printf("%-10s %8.3f %9.2f%% %12d %11.2f%%\n",
			fmt.Sprintf("SC %dKB", kb), res.IPC(), ovh, res.SC.Misses, 100*res.SC.MissRate)
	}
}
